//! Property-based tests of the recovery algorithms' invariants.

use cso_core::{
    basis_pursuit, bomp_with_matrix, cosamp, omp, BompConfig, BpConfig, CosampConfig,
    MeasurementSpec, OmpConfig, SparseVector,
};
use cso_linalg::Vector;
use proptest::prelude::*;

/// Strategy: a sparse support of 1–4 well-separated entries in [0, 60).
fn support() -> impl Strategy<Value = Vec<(usize, f64)>> {
    prop::collection::btree_map(0usize..60, 5e3f64..5e4, 1..5).prop_map(|m| m.into_iter().collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// OMP exactly recovers sparse-at-zero signals at generous M, and its
    /// residual trace is non-increasing.
    #[test]
    fn omp_exact_recovery_and_monotone_residuals(
        entries in support(),
        seed in 0u64..300,
    ) {
        let n = 60;
        let m = 40;
        let spec = MeasurementSpec::new(m, n, seed).unwrap();
        let phi = spec.materialize();
        let truth = SparseVector::new(n, entries).unwrap();
        let y = phi.matvec(&truth.to_dense()).unwrap();
        let r = omp(&phi, &y, &OmpConfig::default()).unwrap();
        let rec = r.to_sparse(n).unwrap();
        let rel = rec.l2_distance(&truth).unwrap() / truth.to_dense().norm2();
        prop_assert!(rel < 1e-8, "rel = {rel}");
        for w in r.trace.windows(2) {
            prop_assert!(w[1].residual_norm <= w[0].residual_norm + 1e-9);
        }
    }

    /// BOMP recovers the same signal shifted by an arbitrary mode: the
    /// recovered outlier set is invariant to the bias.
    #[test]
    fn bomp_shift_invariance(
        entries in support(),
        mode in -1e4f64..1e4,
        seed in 0u64..300,
    ) {
        let n = 60;
        let m = 48;
        let spec = MeasurementSpec::new(m, n, seed).unwrap();
        let phi = spec.materialize();
        let mut x = vec![mode; n];
        for &(i, v) in SparseVector::new(n, entries).unwrap().entries() {
            x[i] = mode + v; // deviation v from the mode
        }
        let y = spec.measure_dense(&x).unwrap();
        let r = bomp_with_matrix(&phi, &y, &BompConfig::default()).unwrap();
        prop_assert!((r.mode - mode).abs() < 1e-3 * (1.0 + mode.abs()), "mode {}", r.mode);
        for o in &r.outliers {
            let want = x[o.index];
            prop_assert!((o.value - want).abs() < 1e-3 * (1.0 + want.abs()));
        }
    }

    /// The three recovery algorithms agree on the support of easy
    /// instances.
    #[test]
    fn recovery_algorithms_agree(
        entries in support(),
        seed in 0u64..200,
    ) {
        let n = 60;
        let m = 44;
        let s = entries.len();
        let spec = MeasurementSpec::new(m, n, seed).unwrap();
        let phi = spec.materialize();
        let truth = SparseVector::new(n, entries).unwrap();
        let y = phi.matvec(&truth.to_dense()).unwrap();

        let mut want: Vec<usize> = truth.entries().iter().map(|&(i, _)| i).collect();
        want.sort_unstable();

        let mut omp_sup = omp(&phi, &y, &OmpConfig::default()).unwrap().support;
        omp_sup.sort_unstable();
        prop_assert_eq!(&omp_sup, &want);

        let co = cosamp(&phi, &y, &CosampConfig::for_sparsity(s)).unwrap();
        let mut co_sup: Vec<usize> = co.x.entries().iter().map(|&(i, _)| i).collect();
        co_sup.sort_unstable();
        prop_assert_eq!(&co_sup, &want);

        let bp = basis_pursuit(&phi, &y, &BpConfig::default()).unwrap();
        let bp_rec = SparseVector::from_dense(bp.x.as_slice(), 1e-3 * bp.x.norm_inf());
        let mut bp_sup: Vec<usize> = bp_rec.entries().iter().map(|&(i, _)| i).collect();
        bp_sup.sort_unstable();
        prop_assert_eq!(&bp_sup, &want);
    }

    /// Measurement of a sparse slice never depends on entry order or on
    /// zero padding.
    #[test]
    fn measurement_order_invariance(
        entries in support(),
        seed in 0u64..500,
    ) {
        let n = 60;
        let spec = MeasurementSpec::new(16, n, seed).unwrap();
        let forward: Vec<(usize, f64)> = entries.clone();
        let mut backward = entries.clone();
        backward.reverse();
        let mut padded = entries;
        padded.push((0, 0.0));
        let a = spec.measure_sparse(&forward).unwrap();
        let b = spec.measure_sparse(&backward).unwrap();
        let c = spec.measure_sparse(&padded).unwrap();
        // Relative tolerance: summation order may differ by a few ulps.
        let scale = a.norm2().max(1.0);
        prop_assert!(a.sub(&b).unwrap().norm2() / scale < 1e-12);
        prop_assert!(a.sub(&c).unwrap().norm2() / scale < 1e-12);
    }

    /// Extended aggregates on exact recoveries match direct computation.
    #[test]
    fn aggregates_match_ground_truth(
        entries in support(),
        mode in -1e3f64..1e3,
        seed in 0u64..200,
    ) {
        use cso_core::aggregates::{recovered_mean, recovered_quantile};
        let n = 60;
        let spec = MeasurementSpec::new(48, n, seed).unwrap();
        let mut x = vec![mode; n];
        for &(i, v) in SparseVector::new(n, entries).unwrap().entries() {
            x[i] = mode + v;
        }
        let y = spec.measure_dense(&x).unwrap();
        let r = cso_core::bomp(&spec, &y, &BompConfig::default()).unwrap();

        let exact_mean: f64 = x.iter().sum::<f64>() / n as f64;
        prop_assert!((recovered_mean(&r) - exact_mean).abs() < 1e-3 * (1.0 + exact_mean.abs()));

        let mut sorted = x.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for q in [0.1, 0.5, 0.9] {
            let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
            let want = sorted[rank - 1];
            let got = recovered_quantile(&r, q).unwrap();
            prop_assert!((got - want).abs() < 1e-3 * (1.0 + want.abs()), "q={q}");
        }
    }

    /// `Vector` sketches of slices compose: y(αx) = α·y(x).
    #[test]
    fn measurement_homogeneity(
        entries in support(),
        alpha in -100.0f64..100.0,
        seed in 0u64..500,
    ) {
        let n = 60;
        let spec = MeasurementSpec::new(12, n, seed).unwrap();
        let x = SparseVector::new(n, entries).unwrap().to_dense();
        let y = spec.measure_dense(x.as_slice()).unwrap();
        let mut xs = x.clone();
        xs.scale(alpha);
        let ys = spec.measure_dense(xs.as_slice()).unwrap();
        let mut expect = y.clone();
        expect.scale(alpha);
        let scale = expect.norm2().max(1.0);
        prop_assert!(ys.sub(&expect).unwrap().norm2() / scale < 1e-9);
    }
}

// Non-proptest regression: Vector needs to be in scope for homogeneity.
#[test]
fn vector_reexport_compiles() {
    let _ = Vector::zeros(1);
}
