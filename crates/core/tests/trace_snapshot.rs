//! Snapshot test: the recorded BOMP atom/residual sequence on a fixed-seed
//! quickstart-sized problem (N = 2000, M = 150, mode 1800 — the same shape
//! as `examples/quickstart.rs`).
//!
//! The pipeline is fully deterministic (seeded Gaussian matrix, exact
//! arithmetic order), so the per-iteration `bomp.iter` events are stable
//! across runs and platforms with IEEE-754 doubles. Atoms are matched
//! exactly; residual norms are matched at `{:.3e}` so the snapshot survives
//! last-bit libm differences while still pinning the convergence curve.

use cso_core::{bomp_traced, BompConfig, MeasurementSpec, OmpKernel};
use cso_obs::{Recorder, Value};

/// The fixed instance: N keys at the mode, three planted outliers.
fn run_fixture_with(kernel: OmpKernel) -> Recorder {
    let n = 2000;
    let mut x = vec![1800.0; n];
    x[404] = 9000.0; // deviation +7200
    x[1200] = -4200.0; // deviation −6000
    x[33] = 6500.0; // deviation +4700
    let spec = MeasurementSpec::new(150, n, 42).expect("valid spec");
    let y = spec.measure_dense(&x).expect("measure");

    let mut cfg = BompConfig::for_k_outliers(3);
    cfg.omp.kernel = kernel;
    let rec = Recorder::new();
    bomp_traced(&spec, &y, &cfg, &rec).expect("recovery");
    rec
}

fn run_fixture() -> Recorder {
    run_fixture_with(OmpKernel::Fused)
}

fn trace_fields(rec: &Recorder) -> (Vec<i64>, Vec<String>, Vec<String>) {
    let iters = rec.events_named("bomp.iter");
    let atoms: Vec<i64> = iters
        .iter()
        .map(|e| match e.field("atom") {
            Some(&Value::I64(a)) => a,
            other => panic!("atom field missing or mistyped: {other:?}"),
        })
        .collect();
    let residuals: Vec<String> = iters
        .iter()
        .map(|e| format!("{:.3e}", e.field_f64("residual").expect("residual field")))
        .collect();
    let modes: Vec<String> =
        iters.iter().map(|e| format!("{:.1}", e.field_f64("mode").expect("mode field"))).collect();
    (atoms, residuals, modes)
}

#[test]
fn bomp_iteration_trace_is_reproducible() {
    let rec = run_fixture();
    let (atoms, residuals, modes) = trace_fields(&rec);

    // Iteration 1 grabs the bias column (atom −1): the mode dominates the
    // measurement energy. The three outliers follow by correlation with the
    // residual, and once the support is complete the residual collapses to
    // numerical zero (~1e-10 after an initial norm of ~1e4). The fused
    // kernel's incremental residual differs from the reference only in the
    // last collapsed value, where both are pure cancellation noise.
    assert_eq!(atoms, vec![-1, 1200, 404, 33], "selected-atom sequence changed");
    assert_eq!(
        residuals,
        vec!["1.051e4", "8.229e3", "4.466e3", "1.537e-10"],
        "residual-norm sequence changed"
    );
    assert_eq!(
        modes,
        vec!["1813.0", "1791.7", "1795.0", "1800.0"],
        "mode-estimate sequence changed"
    );

    let done = rec.events_named("bomp.done");
    assert_eq!(done.len(), 1);
    assert_eq!(done[0].field("bias_selected"), Some(&Value::Bool(true)));
    let mode = done[0].field_f64("mode").expect("final mode");
    assert!((mode - 1800.0).abs() < 1e-6, "final mode = {mode}");
}

#[test]
fn reference_kernel_trace_is_unchanged() {
    // The historical snapshot, pinned against the reference kernel: the
    // textbook QR re-projection loop must keep producing exactly the
    // residual curve recorded before the fused kernel became the default.
    let rec = run_fixture_with(OmpKernel::Reference);
    let (atoms, residuals, modes) = trace_fields(&rec);
    assert_eq!(atoms, vec![-1, 1200, 404, 33], "selected-atom sequence changed");
    assert_eq!(
        residuals,
        vec!["1.051e4", "8.229e3", "4.466e3", "1.536e-10"],
        "residual-norm sequence changed"
    );
    assert_eq!(
        modes,
        vec!["1813.0", "1791.7", "1795.0", "1800.0"],
        "mode-estimate sequence changed"
    );
}

#[test]
fn trace_matches_result_fields() {
    // The events must agree with what the returned BompResult reports: same
    // iteration count, same final residual, same mode.
    let n = 2000;
    let mut x = vec![1800.0; n];
    x[404] = 9000.0;
    x[1200] = -4200.0;
    x[33] = 6500.0;
    let spec = MeasurementSpec::new(150, n, 42).expect("valid spec");
    let y = spec.measure_dense(&x).expect("measure");

    let rec = Recorder::new();
    let result = bomp_traced(&spec, &y, &BompConfig::for_k_outliers(3), &rec).expect("recovery");

    let iters = rec.events_named("bomp.iter");
    assert_eq!(iters.len(), result.iterations);
    for (event, &expected) in iters.iter().zip(result.residual_trace.iter()) {
        assert_eq!(event.field_f64("residual"), Some(expected));
    }
    let done = &rec.events_named("bomp.done")[0];
    assert_eq!(done.field_f64("mode"), Some(result.mode));
    assert_eq!(done.field_u64("iterations"), Some(result.iterations as u64));

    // And the untraced run is bit-identical — observation is free.
    let plain = cso_core::bomp(&spec, &y, &BompConfig::for_k_outliers(3)).expect("recovery");
    assert_eq!(plain.mode, result.mode);
    assert_eq!(plain.residual_trace, result.residual_trace);
}
