//! Recovery-quality metrics from Section 6.1 of the paper.
//!
//! Given the true k-outliers `O_T` and an estimate `O_E` (both sets of
//! key/value pairs with `|O_T| = |O_E| = k`):
//!
//! - **Error on Key** `EK = 1 − |O_T.Key ∩ O_E.Key| / K` — one minus the
//!   precision of the estimated key set.
//! - **Error on Value** `EV = ‖O_T.Value − O_E.Value‖₂ / ‖O_T.Value‖₂`
//!   where both value lists are ordered by value — the relative L2 error on
//!   the ordered value multiset.

use crate::outlier::KeyValue;
use cso_linalg::LinalgError;
use std::collections::HashSet;

/// Error on Key, `EK ∈ [0, 1]`.
///
/// Normalizes by `truth.len()` (the paper's `K`). Errors on an empty truth
/// set. The estimate may be shorter than the truth (a protocol that
/// recovered fewer than `k` outliers is simply penalized).
pub fn error_on_key(truth: &[KeyValue], estimate: &[KeyValue]) -> Result<f64, LinalgError> {
    if truth.is_empty() {
        return Err(LinalgError::Empty { op: "error_on_key" });
    }
    let t: HashSet<usize> = truth.iter().map(|o| o.index).collect();
    let hits = estimate.iter().filter(|o| t.contains(&o.index)).count();
    Ok(1.0 - hits as f64 / truth.len() as f64)
}

/// Error on Value, `EV ≥ 0` (values beyond 1 are possible for wildly wrong
/// estimates — the paper's Figure 8 K+δ curves exceed 200%).
///
/// Both lists are sorted by value before comparison, as in the paper. A
/// short estimate is padded with zeros (missing outliers contribute their
/// full value as error). Errors when the truth has zero norm or is empty.
pub fn error_on_value(truth: &[KeyValue], estimate: &[KeyValue]) -> Result<f64, LinalgError> {
    if truth.is_empty() {
        return Err(LinalgError::Empty { op: "error_on_value" });
    }
    let mut tv: Vec<f64> = truth.iter().map(|o| o.value).collect();
    let mut ev: Vec<f64> = estimate.iter().map(|o| o.value).collect();
    // resize() both pads a short estimate with zeros and truncates a long
    // one to the first |truth| entries (in estimate order, before sorting).
    ev.resize(tv.len(), 0.0);
    tv.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    ev.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let denom: f64 = tv.iter().map(|v| v * v).sum::<f64>().sqrt();
    if denom == 0.0 {
        return Err(LinalgError::InvalidParameter {
            name: "truth",
            message: "true outlier values have zero norm".into(),
        });
    }
    let num: f64 = tv.iter().zip(&ev).map(|(a, b)| (a - b) * (a - b)).sum::<f64>().sqrt();
    Ok(num / denom)
}

/// Convenience: both metrics at once.
pub fn outlier_errors(
    truth: &[KeyValue],
    estimate: &[KeyValue],
) -> Result<(f64, f64), LinalgError> {
    Ok((error_on_key(truth, estimate)?, error_on_value(truth, estimate)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kv(pairs: &[(usize, f64)]) -> Vec<KeyValue> {
        pairs.iter().map(|&(index, value)| KeyValue { index, value }).collect()
    }

    #[test]
    fn perfect_estimate_has_zero_errors() {
        let t = kv(&[(1, 10.0), (2, -5.0), (3, 100.0)]);
        let (ek, ev) = outlier_errors(&t, &t).unwrap();
        assert_eq!(ek, 0.0);
        assert_eq!(ev, 0.0);
    }

    #[test]
    fn ek_counts_missing_keys() {
        let t = kv(&[(1, 10.0), (2, 20.0), (3, 30.0), (4, 40.0)]);
        let e = kv(&[(1, 10.0), (2, 20.0), (9, 30.0), (8, 40.0)]);
        assert!((error_on_key(&t, &e).unwrap() - 0.5).abs() < 1e-15);
    }

    #[test]
    fn ek_ignores_value_differences() {
        let t = kv(&[(1, 10.0), (2, 20.0)]);
        let e = kv(&[(1, 999.0), (2, -999.0)]);
        assert_eq!(error_on_key(&t, &e).unwrap(), 0.0);
    }

    #[test]
    fn ek_is_one_for_disjoint_sets() {
        let t = kv(&[(1, 1.0)]);
        let e = kv(&[(2, 1.0)]);
        assert_eq!(error_on_key(&t, &e).unwrap(), 1.0);
    }

    #[test]
    fn ev_compares_sorted_values_not_keys() {
        // Same multiset of values under different keys → EV = 0 (the metric
        // orders by value, per the paper).
        let t = kv(&[(1, 10.0), (2, 20.0)]);
        let e = kv(&[(7, 20.0), (9, 10.0)]);
        assert_eq!(error_on_value(&t, &e).unwrap(), 0.0);
    }

    #[test]
    fn ev_relative_error_hand_computed() {
        let t = kv(&[(1, 3.0), (2, 4.0)]);
        let e = kv(&[(1, 3.0), (2, 0.0)]);
        // sorted truth [3,4], sorted estimate [0,3]:
        // diff = [3, 1] → √10 / 5
        let ev = error_on_value(&t, &e).unwrap();
        assert!((ev - (10.0f64).sqrt() / 5.0).abs() < 1e-12);
    }

    #[test]
    fn ev_pads_short_estimates_with_zeros() {
        let t = kv(&[(1, 3.0), (2, 4.0)]);
        let e = kv(&[(1, 3.0)]);
        // estimate treated as [3, 0] → sorted [0, 3] vs [3, 4]:
        let ev = error_on_value(&t, &e).unwrap();
        assert!((ev - (9.0f64 + 1.0).sqrt() / 5.0).abs() < 1e-12);
    }

    #[test]
    fn ev_truncates_long_estimates() {
        let t = kv(&[(1, 5.0)]);
        let e = kv(&[(1, 5.0), (2, 99.0)]);
        // Only the first |truth| values (estimate order) participate.
        let ev = error_on_value(&t, &e).unwrap();
        assert!(ev.is_finite());
    }

    #[test]
    fn ev_long_estimate_hand_computed() {
        // A 3-entry estimate against a 2-entry truth keeps the first two
        // estimate values [4, 3] (insertion order, before sorting) and drops
        // the 99. Sorted: truth [3, 4] vs estimate [3, 4] → EV = 0.
        let t = kv(&[(1, 3.0), (2, 4.0)]);
        let e = kv(&[(1, 4.0), (2, 3.0), (9, 99.0)]);
        let ev = error_on_value(&t, &e).unwrap();
        assert_eq!(ev, 0.0);

        // And a non-zero hand-computed case: estimate truncates to [5, 1],
        // sorted [1, 5] vs truth [3, 4] → √((3−1)² + (4−5)²)/√(3²+4²) = √5/5.
        let t2 = kv(&[(1, 3.0), (2, 4.0)]);
        let e2 = kv(&[(3, 5.0), (4, 1.0), (5, 777.0)]);
        let ev2 = error_on_value(&t2, &e2).unwrap();
        assert!((ev2 - 5.0f64.sqrt() / 5.0).abs() < 1e-12);
    }

    #[test]
    fn empty_truth_is_an_error() {
        assert!(error_on_key(&[], &[]).is_err());
        assert!(error_on_value(&[], &[]).is_err());
    }

    #[test]
    fn zero_norm_truth_is_an_error() {
        let t = kv(&[(1, 0.0)]);
        assert!(error_on_value(&t, &t).is_err());
    }
}
