//! Orthogonal Matching Pursuit.
//!
//! The greedy recovery algorithm of Pati et al. / Tropp & Gilbert that the
//! paper uses as its subroutine (Algorithm 2). Each iteration:
//!
//! 1. scans the dictionary for the column with the largest `|⟨φ, r⟩|`,
//! 2. appends that column to the active set,
//! 3. re-projects `y` onto the active span (via incremental QR — the
//!    "QR factorization with Gram–Schmidt process" of Section 5),
//! 4. updates the residual `r = y − proj(y, Φ*)`.
//!
//! Termination mirrors the paper's production concerns:
//! - an iteration budget `R` (Section 5 tunes `R = f(k) ∈ [2k, 5k]`),
//! - a residual tolerance (exact recovery reached),
//! - the **residual-stall guard**: "terminate the recovery process once the
//!   residual stops decreasing", the paper's fix for floating-point error
//!   accumulation in Gram–Schmidt QR.
//!
//! Two kernels implement the loop (selected by [`OmpConfig::kernel`]):
//!
//! - [`OmpKernel::Fused`] (default) maintains the residual and the full
//!   correlation vector `c = Φᵀr` incrementally. After selecting column
//!   `j` the new orthonormal direction `q` satisfies `r' = r − (qᵀr)·q`
//!   (one dot + one axpy, since `r ⊥ span(q₀..q_{k−1})`), and the
//!   correlations follow as `c' = c − (qᵀr)·Φᵀq` — a single blocked
//!   [`cso_linalg::gemv`] pass fused with the next argmax scan, instead of
//!   re-projecting `y` through the QR and re-scanning every column.
//! - [`OmpKernel::Reference`] is the textbook loop (full `qr.residual`
//!   re-projection and a fresh `Φᵀr` dot scan per iteration), kept as the
//!   oracle the fused path is tested against.
//!
//! Both kernels scan the dictionary in fixed [`COL_BLOCK`]-column blocks
//! scheduled over the [`cso_exec`] pool; block boundaries are independent
//! of the worker count and block winners fold in ascending order with a
//! lowest-index tie-break, so results are bit-identical at any worker
//! count. See DESIGN.md §9.

use crate::ops::{MeasurementOp, MeasurementOperator};
use crate::sparse::SparseVector;
use cso_exec::{ExecConfig, ExecStats};
use cso_linalg::{gemv, vector, ColMatrix, IncrementalQr, LinalgError, Vector};
use cso_obs::{Recorder, Value};

/// Fixed column-block width for dictionary scans. Blocks are the unit of
/// parallel scheduling *and* of the fused gemv kernel, and are independent
/// of the worker count — the determinism contract (DESIGN.md §9).
pub const COL_BLOCK: usize = 2048;

/// Default for [`OmpConfig::par_min_work`]: dictionaries below ~2M
/// elements are scanned inline, where pool dispatch would cost more than
/// the scan itself.
pub const DEFAULT_PAR_MIN_WORK: usize = 1 << 21;

/// Why an OMP run stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The iteration budget `R` was exhausted.
    MaxIterations,
    /// The residual norm fell below the tolerance — recovery is exact to
    /// working precision.
    ResidualTolerance,
    /// The residual stopped decreasing (floating-point stall guard from
    /// Section 5 of the paper).
    ResidualStall,
    /// The best remaining column was numerically inside the active span, so
    /// no further progress is possible.
    RankExhausted,
    /// Every dictionary column has already been selected.
    DictionaryExhausted,
}

impl StopReason {
    /// Stable lowercase name for traces and reports.
    pub fn as_str(&self) -> &'static str {
        match self {
            StopReason::MaxIterations => "max_iterations",
            StopReason::ResidualTolerance => "residual_tolerance",
            StopReason::ResidualStall => "residual_stall",
            StopReason::RankExhausted => "rank_exhausted",
            StopReason::DictionaryExhausted => "dictionary_exhausted",
        }
    }
}

/// Which inner-loop implementation [`omp`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OmpKernel {
    /// Incremental residual/correlation recurrence with blocked gemv
    /// refresh fused into the argmax scan (default).
    Fused,
    /// Textbook loop: full QR re-projection and a fresh dot scan per
    /// iteration. The oracle the fused kernel is tested against.
    Reference,
}

impl OmpKernel {
    /// Stable lowercase name for traces and reports.
    pub fn as_str(&self) -> &'static str {
        match self {
            OmpKernel::Fused => "fused",
            OmpKernel::Reference => "reference",
        }
    }
}

/// Tuning knobs for [`omp`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OmpConfig {
    /// Iteration budget `R` (the paper's `f(k)`).
    pub max_iterations: usize,
    /// Stop when `‖r‖₂ ≤ residual_tolerance · ‖y‖₂`.
    pub residual_tolerance: f64,
    /// Enable the residual-stall termination guard.
    pub stall_guard: bool,
    /// Minimum relative residual decrease per iteration before the stall
    /// guard fires (only meaningful when `stall_guard` is set).
    pub min_relative_decrease: f64,
    /// Record the full least-squares coefficient vector after every
    /// iteration (needed for the paper's mode-vs-iteration traces,
    /// Figures 4(b) and 9; costs one `O(k²)` solve per iteration).
    pub track_coefficients: bool,
    /// Inner-loop implementation (see [`OmpKernel`]).
    pub kernel: OmpKernel,
    /// Worker budget for dictionary scans. Resolved **once per run** (not
    /// per iteration): dictionaries with fewer than
    /// [`OmpConfig::par_min_work`] elements always scan inline on the
    /// caller.
    pub exec: ExecConfig,
    /// Minimum dictionary size (`rows · cols`) before `exec` is engaged;
    /// below it every scan runs sequentially regardless of `exec.workers`.
    pub par_min_work: usize,
}

impl Default for OmpConfig {
    fn default() -> Self {
        OmpConfig {
            max_iterations: usize::MAX,
            residual_tolerance: 1e-9,
            stall_guard: true,
            min_relative_decrease: 1e-12,
            track_coefficients: false,
            kernel: OmpKernel::Fused,
            exec: ExecConfig::default(),
            par_min_work: DEFAULT_PAR_MIN_WORK,
        }
    }
}

impl OmpConfig {
    /// Config with an explicit iteration budget and defaults elsewhere.
    pub fn with_max_iterations(r: usize) -> Self {
        OmpConfig { max_iterations: r, ..OmpConfig::default() }
    }
}

/// Per-iteration record of an OMP run.
#[derive(Debug, Clone)]
pub struct IterationRecord {
    /// Dictionary column selected this iteration.
    pub selected: usize,
    /// Residual norm *after* re-projection.
    pub residual_norm: f64,
    /// Least-squares coefficients over the support selected so far, in
    /// selection order. Populated only when
    /// [`OmpConfig::track_coefficients`] is set.
    pub coefficients: Option<Vec<f64>>,
}

/// Output of an OMP run.
#[derive(Debug, Clone)]
pub struct OmpResult {
    /// Selected column indices, in selection order.
    pub support: Vec<usize>,
    /// Final least-squares coefficients, aligned with `support`.
    pub coefficients: Vec<f64>,
    /// Final residual norm.
    pub residual_norm: f64,
    /// Why the run stopped.
    pub stop: StopReason,
    /// Per-iteration trace.
    pub trace: Vec<IterationRecord>,
}

impl OmpResult {
    /// Assembles the recovered signal as a sparse `dim`-dimensional vector.
    pub fn to_sparse(&self, dim: usize) -> Result<SparseVector, LinalgError> {
        SparseVector::new(
            dim,
            self.support.iter().copied().zip(self.coefficients.iter().copied()).collect(),
        )
    }

    /// Number of iterations executed.
    pub fn iterations(&self) -> usize {
        self.trace.len()
    }
}

/// What a kernel loop hands back to the shared epilogue.
struct RunOutcome {
    qr: IncrementalQr,
    support: Vec<usize>,
    trace: Vec<IterationRecord>,
    residual_norm: f64,
    stop: StopReason,
}

/// Runs OMP against a materialized dictionary.
///
/// `dictionary` is `M × D` (for BOMP, `D = N + 1` with the bias column
/// first); `y` has length `M`. Errors on a dimension mismatch or an empty
/// measurement.
pub fn omp(
    dictionary: &ColMatrix,
    y: &Vector,
    config: &OmpConfig,
) -> Result<OmpResult, LinalgError> {
    omp_traced(dictionary, y, config, &Recorder::disabled())
}

/// As [`omp`], recording a `recover.omp` span with one `omp.iter` event per
/// iteration (selected atom, residual norm, relative residual decrease) and
/// a final `omp.stop` event into `rec`.
///
/// With a disabled recorder every instrumentation point reduces to a single
/// branch, so this path is what [`omp`] itself runs.
pub fn omp_traced(
    dictionary: &ColMatrix,
    y: &Vector,
    config: &OmpConfig,
    rec: &Recorder,
) -> Result<OmpResult, LinalgError> {
    if y.len() != dictionary.rows() {
        return Err(LinalgError::DimensionMismatch {
            op: "omp",
            expected: (dictionary.rows(), 1),
            actual: (y.len(), 1),
        });
    }
    if dictionary.rows() == 0 || dictionary.cols() == 0 {
        return Err(LinalgError::Empty { op: "omp" });
    }

    let _span = rec.span_with(
        "recover.omp",
        &[
            ("rows", Value::U64(dictionary.rows() as u64)),
            ("cols", Value::U64(dictionary.cols() as u64)),
            ("kernel", Value::from(config.kernel.as_str())),
        ],
    );
    // Worker budget for every scan in this run, resolved exactly once:
    // small dictionaries stay inline no matter what `exec` asks for.
    let exec = if dictionary.rows() * dictionary.cols() >= config.par_min_work {
        config.exec
    } else {
        ExecConfig::sequential()
    };

    let outcome = match config.kernel {
        OmpKernel::Fused => run_fused(dictionary, y, config, rec, &exec)?,
        OmpKernel::Reference => run_reference(dictionary, y, config, rec, &exec)?,
    };
    finish_run(outcome, y, config, rec)
}

/// Shared epilogue of every kernel: the final least-squares solve through
/// the run's QR and the `omp.stop` event.
fn finish_run(
    outcome: RunOutcome,
    y: &Vector,
    config: &OmpConfig,
    rec: &Recorder,
) -> Result<OmpResult, LinalgError> {
    let RunOutcome { qr, support, trace, residual_norm, stop } = outcome;

    let coefficients = if support.is_empty() {
        Vec::new()
    } else {
        qr.solve_least_squares(y.as_slice())?.into_vec()
    };
    if rec.is_enabled() {
        rec.event(
            "omp.stop",
            &[
                ("reason", Value::from(stop.as_str())),
                ("iterations", Value::U64(trace.len() as u64)),
                ("residual", Value::F64(residual_norm)),
                ("stall_guard", Value::Bool(config.stall_guard)),
            ],
        );
    }
    Ok(OmpResult { support, coefficients, residual_norm, stop, trace })
}

/// A dictionary the OMP kernels can scan without materializing it — the
/// matrix-free counterpart of the `ColMatrix` entry points. Implementations
/// provide exactly the two products the loop needs (a full transpose scan
/// and single-column reads); everything else — QR, residual recurrence,
/// stall guard, tracing — is shared with the dense kernels.
pub trait OmpDictionary {
    /// Measurement dimension (length of every atom).
    fn rows(&self) -> usize;
    /// Number of atoms.
    fn cols(&self) -> usize;
    /// Writes atom `j` into `out` (length [`OmpDictionary::rows`]).
    fn column_into(&self, j: usize, out: &mut [f64]);
    /// The correlation scan `out = Dᵀ·x` (`x.len() == rows`,
    /// `out.len() == cols`).
    fn correlations_into(&self, x: &[f64], out: &mut [f64]) -> Result<(), LinalgError>;
}

impl OmpDictionary for MeasurementOperator {
    fn rows(&self) -> usize {
        self.m()
    }

    fn cols(&self) -> usize {
        self.n()
    }

    fn column_into(&self, j: usize, out: &mut [f64]) {
        MeasurementOp::column_into(self, j, out);
    }

    fn correlations_into(&self, x: &[f64], out: &mut [f64]) -> Result<(), LinalgError> {
        self.apply_transpose_into(x, out)
    }
}

impl OmpDictionary for ColMatrix {
    fn rows(&self) -> usize {
        ColMatrix::rows(self)
    }

    fn cols(&self) -> usize {
        ColMatrix::cols(self)
    }

    fn column_into(&self, j: usize, out: &mut [f64]) {
        out.copy_from_slice(self.col(j));
    }

    fn correlations_into(&self, x: &[f64], out: &mut [f64]) -> Result<(), LinalgError> {
        if x.len() != ColMatrix::rows(self) || out.len() != ColMatrix::cols(self) {
            return Err(LinalgError::DimensionMismatch {
                op: "correlations_into",
                expected: (ColMatrix::rows(self), ColMatrix::cols(self)),
                actual: (x.len(), out.len()),
            });
        }
        gemv::gemv_transpose_into(self.as_col_major(), ColMatrix::rows(self), x, out);
        Ok(())
    }
}

/// Runs OMP against a matrix-free dictionary (see [`OmpDictionary`]).
///
/// Same loop structure, stop conditions, and tie-breaks as [`omp`]; the
/// per-iteration correlation refresh is a single
/// [`OmpDictionary::correlations_into`] pass (`O(N log N)` for SRHT,
/// `O(N·s)` for the seeded-sparse backend) fused with the argmax scan,
/// instead of the dense blocked gemv.
pub fn omp_with_op<D: OmpDictionary + ?Sized>(
    dict: &D,
    y: &Vector,
    config: &OmpConfig,
) -> Result<OmpResult, LinalgError> {
    omp_with_op_traced(dict, y, config, &Recorder::disabled())
}

/// As [`omp_with_op`], recording the same `recover.omp` span and events as
/// [`omp_traced`] (plus a `scan = operator` attribute).
pub fn omp_with_op_traced<D: OmpDictionary + ?Sized>(
    dict: &D,
    y: &Vector,
    config: &OmpConfig,
    rec: &Recorder,
) -> Result<OmpResult, LinalgError> {
    if y.len() != dict.rows() {
        return Err(LinalgError::DimensionMismatch {
            op: "omp",
            expected: (dict.rows(), 1),
            actual: (y.len(), 1),
        });
    }
    if dict.rows() == 0 || dict.cols() == 0 {
        return Err(LinalgError::Empty { op: "omp" });
    }
    let _span = rec.span_with(
        "recover.omp",
        &[
            ("rows", Value::U64(dict.rows() as u64)),
            ("cols", Value::U64(dict.cols() as u64)),
            ("kernel", Value::from(config.kernel.as_str())),
            ("scan", Value::from("operator")),
        ],
    );
    let outcome = match config.kernel {
        OmpKernel::Fused => run_fused_op(dict, y, config, rec)?,
        OmpKernel::Reference => run_reference_op(dict, y, config, rec)?,
    };
    finish_run(outcome, y, config, rec)
}

/// The fused kernel over an [`OmpDictionary`]: identical invariants to
/// [`run_fused`], with the deferred `−α·Dᵀq` refresh computed by one
/// operator transpose pass and folded into the argmax scan.
fn run_fused_op<D: OmpDictionary + ?Sized>(
    dict: &D,
    y: &Vector,
    config: &OmpConfig,
    rec: &Recorder,
) -> Result<RunOutcome, LinalgError> {
    let rows = dict.rows();
    let d = dict.cols();
    let y_norm = y.norm2();
    let abs_tol = config.residual_tolerance * y_norm;

    let mut corr = vec![0.0f64; d];
    dict.correlations_into(y.as_slice(), &mut corr)?;

    let mut qr = IncrementalQr::new(rows);
    let mut selected = vec![false; d];
    let mut support: Vec<usize> = Vec::new();
    let mut trace: Vec<IterationRecord> = Vec::new();
    let mut residual = y.clone();
    let mut norm = y_norm;
    let mut prev_norm = y_norm;
    let mut pending: Option<f64> = None;
    let mut qt_phi = vec![0.0f64; d];
    let mut col = vec![0.0f64; rows];

    let stop = loop {
        if support.len() >= config.max_iterations {
            break StopReason::MaxIterations;
        }
        if norm <= abs_tol {
            break StopReason::ResidualTolerance;
        }
        if support.len() == d {
            break StopReason::DictionaryExhausted;
        }
        let best = match pending.take() {
            Some(alpha) => {
                let q = qr.q_col(qr.ncols() - 1);
                dict.correlations_into(q, &mut qt_phi)?;
                // Shift c by −α·Dᵀq fused with the argmax, lowest index
                // winning ties — the same serial left-to-right order the
                // dense kernel's block fold reproduces.
                let mut best: Option<(usize, f64)> = None;
                for (j, (c, t)) in corr.iter_mut().zip(&qt_phi).enumerate() {
                    *c -= alpha * *t;
                    if selected[j] {
                        continue;
                    }
                    let a = c.abs();
                    match best {
                        Some((_, b)) if b >= a => {}
                        _ => best = Some((j, a)),
                    }
                }
                best
            }
            None => argmax_unselected(&corr, &selected),
        };
        let (j, _) = best.expect("unselected column exists");
        dict.column_into(j, &mut col);
        match qr.push_column(&col) {
            Ok(()) => {}
            Err(LinalgError::RankDeficient { .. }) => break StopReason::RankExhausted,
            Err(e) => return Err(e),
        }
        selected[j] = true;
        support.push(j);
        let q = qr.q_col(qr.ncols() - 1);
        let alpha = vector::dot(q, residual.as_slice());
        vector::axpy(-alpha, q, residual.as_mut_slice());
        norm = residual.norm2();
        pending = Some(alpha);
        if record_iteration(config, rec, &qr, y, j, norm, prev_norm, &mut trace)? {
            break StopReason::ResidualStall;
        }
        prev_norm = norm;
    };

    Ok(RunOutcome { qr, support, trace, residual_norm: norm, stop })
}

/// The textbook loop over an [`OmpDictionary`]: full QR re-projection and a
/// fresh transpose scan per iteration. The oracle [`run_fused_op`] is
/// tested against.
fn run_reference_op<D: OmpDictionary + ?Sized>(
    dict: &D,
    y: &Vector,
    config: &OmpConfig,
    rec: &Recorder,
) -> Result<RunOutcome, LinalgError> {
    let rows = dict.rows();
    let d = dict.cols();
    let y_norm = y.norm2();
    let abs_tol = config.residual_tolerance * y_norm;

    let mut qr = IncrementalQr::new(rows);
    let mut selected = vec![false; d];
    let mut support: Vec<usize> = Vec::new();
    let mut trace: Vec<IterationRecord> = Vec::new();
    let mut residual = y.clone();
    let mut norm = y_norm;
    let mut prev_norm = y_norm;
    let mut corr = vec![0.0f64; d];
    let mut col = vec![0.0f64; rows];

    let stop = loop {
        if support.len() >= config.max_iterations {
            break StopReason::MaxIterations;
        }
        if norm <= abs_tol {
            break StopReason::ResidualTolerance;
        }
        if support.len() == d {
            break StopReason::DictionaryExhausted;
        }
        dict.correlations_into(residual.as_slice(), &mut corr)?;
        let best = argmax_unselected(&corr, &selected);
        let (j, _) = best.expect("unselected column exists");
        dict.column_into(j, &mut col);
        match qr.push_column(&col) {
            Ok(()) => {}
            Err(LinalgError::RankDeficient { .. }) => break StopReason::RankExhausted,
            Err(e) => return Err(e),
        }
        selected[j] = true;
        support.push(j);
        residual = qr.residual(y.as_slice())?;
        norm = residual.norm2();
        if record_iteration(config, rec, &qr, y, j, norm, prev_norm, &mut trace)? {
            break StopReason::ResidualStall;
        }
        prev_norm = norm;
    };

    Ok(RunOutcome { qr, support, trace, residual_norm: norm, stop })
}

/// Shared per-iteration bookkeeping: coefficient tracking, trace push, the
/// `omp.iter` event, and the stall-guard decision (returns `true` when the
/// guard fires). Identical for both kernels so their traces agree.
#[allow(clippy::too_many_arguments)]
fn record_iteration(
    config: &OmpConfig,
    rec: &Recorder,
    qr: &IncrementalQr,
    y: &Vector,
    j: usize,
    norm: f64,
    prev_norm: f64,
    trace: &mut Vec<IterationRecord>,
) -> Result<bool, LinalgError> {
    let coefficients = if config.track_coefficients {
        Some(qr.solve_least_squares(y.as_slice())?.into_vec())
    } else {
        None
    };
    trace.push(IterationRecord { selected: j, residual_norm: norm, coefficients });
    rec.event(
        "omp.iter",
        &[
            ("iter", Value::U64(trace.len() as u64)),
            ("atom", Value::U64(j as u64)),
            ("residual", Value::F64(norm)),
            (
                "rel_decrease",
                Value::F64(if prev_norm > 0.0 { 1.0 - norm / prev_norm } else { 0.0 }),
            ),
        ],
    );
    Ok(config.stall_guard && norm >= prev_norm * (1.0 - config.min_relative_decrease))
}

/// The incremental-residual kernel (see the module docs and DESIGN.md §9).
///
/// Invariants at the top of each iteration:
/// - `residual = y − proj(y, span(support))` (maintained by axpy),
/// - `corr[j] = ⟨φ_j, residual⟩` **after** the pending refresh is applied —
///   the refresh for the last selected direction is deferred (`pending`)
///   and fused into the next argmax scan, so a run that stops never pays a
///   final `Φᵀq` pass.
fn run_fused(
    dictionary: &ColMatrix,
    y: &Vector,
    config: &OmpConfig,
    rec: &Recorder,
    exec: &ExecConfig,
) -> Result<RunOutcome, LinalgError> {
    let rows = dictionary.rows();
    let d = dictionary.cols();
    let data = dictionary.as_col_major();
    let y_norm = y.norm2();
    let abs_tol = config.residual_tolerance * y_norm;

    // Initial correlations c = Φᵀy: one blocked pass, bit-identical to a
    // per-column dot scan.
    let mut corr = vec![0.0f64; d];
    let (_, stats) = cso_exec::par_map_chunks_mut(exec, &mut corr, COL_BLOCK, |b, chunk| {
        let start = b * COL_BLOCK;
        let block = &data[start * rows..(start + chunk.len()) * rows];
        gemv::gemv_transpose_into(block, rows, y.as_slice(), chunk);
    });
    stats.record(rec);

    let mut qr = IncrementalQr::new(rows);
    let mut selected = vec![false; d];
    let mut support: Vec<usize> = Vec::new();
    let mut trace: Vec<IterationRecord> = Vec::new();
    let mut residual = y.clone();
    let mut norm = y_norm;
    let mut prev_norm = y_norm;
    // Deferred correlation refresh: `Some(α)` means `corr` still reflects
    // the residual *before* the last selection and must be shifted by
    // `−α·Φᵀq_last` (fused into the next scan) before use.
    let mut pending: Option<f64> = None;

    let stop = loop {
        if support.len() >= config.max_iterations {
            break StopReason::MaxIterations;
        }
        if norm <= abs_tol {
            break StopReason::ResidualTolerance;
        }
        if support.len() == d {
            break StopReason::DictionaryExhausted;
        }
        let best = match pending.take() {
            Some(alpha) => {
                let q = qr.q_col(qr.ncols() - 1);
                let (partials, stats) =
                    cso_exec::par_map_chunks_mut(exec, &mut corr, COL_BLOCK, |b, chunk| {
                        refresh_block(data, rows, q, alpha, b, chunk, &selected)
                    });
                stats.record(rec);
                fold_block_winners(partials)
            }
            None => argmax_unselected(&corr, &selected),
        };
        let (j, _) = best.expect("unselected column exists");
        match qr.push_column(dictionary.col(j)) {
            Ok(()) => {}
            Err(LinalgError::RankDeficient { .. }) => break StopReason::RankExhausted,
            Err(e) => return Err(e),
        }
        selected[j] = true;
        support.push(j);
        // r ⊥ span(q₀..q_{k−1}) already, so the new projection removes
        // only the q_k component: r' = r − (q_kᵀr)·q_k.
        let q = qr.q_col(qr.ncols() - 1);
        let alpha = vector::dot(q, residual.as_slice());
        vector::axpy(-alpha, q, residual.as_mut_slice());
        norm = residual.norm2();
        pending = Some(alpha);
        if record_iteration(config, rec, &qr, y, j, norm, prev_norm, &mut trace)? {
            break StopReason::ResidualStall;
        }
        prev_norm = norm;
    };

    Ok(RunOutcome { qr, support, trace, residual_norm: norm, stop })
}

/// One block of the fused refresh+select pass: shifts `chunk` (the block's
/// slice of the correlation vector) by `−α·Φ_blockᵀq` via the blocked gemv
/// kernel, then returns the block's argmax over unselected columns.
fn refresh_block(
    data: &[f64],
    rows: usize,
    q: &[f64],
    alpha: f64,
    b: usize,
    chunk: &mut [f64],
    selected: &[bool],
) -> Option<(usize, f64)> {
    let start = b * COL_BLOCK;
    let len = chunk.len();
    let mut qt_phi = [0.0f64; COL_BLOCK];
    let block = &data[start * rows..(start + len) * rows];
    gemv::gemv_transpose_into(block, rows, q, &mut qt_phi[..len]);
    let mut best: Option<(usize, f64)> = None;
    for (off, (c, t)) in chunk.iter_mut().zip(&qt_phi[..len]).enumerate() {
        *c -= alpha * *t;
        let j = start + off;
        if selected[j] {
            continue;
        }
        let a = c.abs();
        match best {
            Some((_, b)) if b >= a => {}
            _ => best = Some((j, a)),
        }
    }
    best
}

/// Folds per-block winners (ascending block order) with the lowest-index
/// tie-break — identical to a serial left-to-right scan.
fn fold_block_winners(partials: Vec<Option<(usize, f64)>>) -> Option<(usize, f64)> {
    partials.into_iter().flatten().fold(None, |acc, (j, c)| match acc {
        Some((_, b)) if b >= c => acc,
        _ => Some((j, c)),
    })
}

/// Serial argmax of `|corr[j]|` over unselected columns, lowest index wins
/// ties. Used for the first fused iteration (no refresh pending yet).
fn argmax_unselected(corr: &[f64], selected: &[bool]) -> Option<(usize, f64)> {
    let mut best: Option<(usize, f64)> = None;
    for (j, c) in corr.iter().enumerate() {
        if selected[j] {
            continue;
        }
        let a = c.abs();
        match best {
            Some((_, b)) if b >= a => {}
            _ => best = Some((j, a)),
        }
    }
    best
}

/// The textbook loop: full `qr.residual` re-projection and a fresh dot
/// scan per iteration. Bit-for-bit the historical behaviour of this module
/// (the scan itself now runs over [`COL_BLOCK`] blocks on the exec pool,
/// which does not change any float).
fn run_reference(
    dictionary: &ColMatrix,
    y: &Vector,
    config: &OmpConfig,
    rec: &Recorder,
    exec: &ExecConfig,
) -> Result<RunOutcome, LinalgError> {
    let d = dictionary.cols();
    let y_norm = y.norm2();
    let abs_tol = config.residual_tolerance * y_norm;

    let mut qr = IncrementalQr::new(dictionary.rows());
    let mut selected = vec![false; d];
    let mut support: Vec<usize> = Vec::new();
    let mut trace: Vec<IterationRecord> = Vec::new();
    let mut residual = y.clone();
    let mut norm = y_norm;
    let mut prev_norm = y_norm;

    let stop = loop {
        if support.len() >= config.max_iterations {
            break StopReason::MaxIterations;
        }
        if norm <= abs_tol {
            break StopReason::ResidualTolerance;
        }
        if support.len() == d {
            break StopReason::DictionaryExhausted;
        }
        // Column selection: argmax |⟨φ_j, r⟩| over unselected columns.
        // Ties break to the lowest index for determinism.
        let best = select_column(dictionary, &residual, &selected, exec, rec);
        let (j, _) = best.expect("unselected column exists");
        match qr.push_column(dictionary.col(j)) {
            Ok(()) => {}
            Err(LinalgError::RankDeficient { .. }) => break StopReason::RankExhausted,
            Err(e) => return Err(e),
        }
        selected[j] = true;
        support.push(j);
        residual = qr.residual(y.as_slice())?;
        norm = residual.norm2();
        if record_iteration(config, rec, &qr, y, j, norm, prev_norm, &mut trace)? {
            break StopReason::ResidualStall;
        }
        prev_norm = norm;
    };

    Ok(RunOutcome { qr, support, trace, residual_norm: norm, stop })
}

/// Finds the unselected column with the largest `|⟨φ_j, r⟩|`, ties to the
/// lowest index. The scan dominates the reference kernel's runtime
/// (`O(M·D)` per iteration), so it runs over fixed [`COL_BLOCK`]-column
/// blocks on the exec pool; block winners fold in ascending order, keeping
/// the result identical to a serial scan at any worker count.
fn select_column(
    dictionary: &ColMatrix,
    residual: &Vector,
    selected: &[bool],
    exec: &ExecConfig,
    rec: &Recorder,
) -> Option<(usize, f64)> {
    let d = dictionary.cols();
    let blocks = d.div_ceil(COL_BLOCK);
    let (partials, stats): (Vec<Option<(usize, f64)>>, ExecStats) =
        cso_exec::par_map_n(exec, blocks, |b| {
            let start = b * COL_BLOCK;
            let end = (start + COL_BLOCK).min(d);
            let mut best: Option<(usize, f64)> = None;
            for j in start..end {
                if selected[j] {
                    continue;
                }
                let c = vector::dot(dictionary.col(j), residual.as_slice()).abs();
                match best {
                    Some((_, b)) if b >= c => {}
                    _ => best = Some((j, c)),
                }
            }
            best
        });
    stats.record(rec);
    fold_block_winners(partials)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measurement::MeasurementSpec;

    /// Builds a random Gaussian dictionary and a sparse ground truth.
    fn sparse_instance(
        m: usize,
        n: usize,
        support: &[(usize, f64)],
        seed: u64,
    ) -> (ColMatrix, Vector, SparseVector) {
        let spec = MeasurementSpec::new(m, n, seed).unwrap();
        let phi = spec.materialize();
        let truth = SparseVector::new(n, support.to_vec()).unwrap();
        let y = phi.matvec(&truth.to_dense()).unwrap();
        (phi, y, truth)
    }

    #[test]
    fn recovers_exactly_sparse_signal() {
        let (phi, y, truth) = sparse_instance(40, 100, &[(3, 5.0), (42, -2.0), (77, 9.0)], 7);
        let r = omp(&phi, &y, &OmpConfig::default()).unwrap();
        assert_eq!(r.stop, StopReason::ResidualTolerance);
        let rec = r.to_sparse(100).unwrap();
        assert!(
            rec.l2_distance(&truth).unwrap() < 1e-8,
            "d = {}",
            rec.l2_distance(&truth).unwrap()
        );
        let mut sup = r.support.clone();
        sup.sort_unstable();
        assert_eq!(sup, vec![3, 42, 77]);
    }

    #[test]
    fn selects_largest_component_first() {
        let (phi, y, _) = sparse_instance(50, 80, &[(10, 1.0), (20, 100.0)], 3);
        let r = omp(&phi, &y, &OmpConfig::default()).unwrap();
        assert_eq!(r.support[0], 20, "dominant component should be picked first");
    }

    #[test]
    fn respects_iteration_budget() {
        let (phi, y, _) = sparse_instance(40, 100, &[(1, 3.0), (2, 3.0), (3, 3.0), (4, 3.0)], 11);
        let r = omp(&phi, &y, &OmpConfig::with_max_iterations(2)).unwrap();
        assert_eq!(r.stop, StopReason::MaxIterations);
        assert_eq!(r.iterations(), 2);
        assert_eq!(r.support.len(), 2);
    }

    #[test]
    fn zero_measurement_stops_immediately() {
        let spec = MeasurementSpec::new(10, 20, 5).unwrap();
        let phi = spec.materialize();
        let r = omp(&phi, &Vector::zeros(10), &OmpConfig::default()).unwrap();
        assert_eq!(r.stop, StopReason::ResidualTolerance);
        assert!(r.support.is_empty());
        assert!(r.coefficients.is_empty());
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let phi = ColMatrix::zeros(4, 6);
        assert!(omp(&phi, &Vector::zeros(5), &OmpConfig::default()).is_err());
    }

    #[test]
    fn residual_norms_are_monotone_while_running() {
        let (phi, y, _) = sparse_instance(30, 60, &[(5, 4.0), (6, -3.0), (30, 2.0)], 17);
        let r = omp(&phi, &y, &OmpConfig::default()).unwrap();
        for w in r.trace.windows(2) {
            assert!(
                w[1].residual_norm <= w[0].residual_norm + 1e-12,
                "residual must not increase before the stall guard fires"
            );
        }
    }

    #[test]
    fn trace_records_coefficients_when_asked() {
        let (phi, y, _) = sparse_instance(30, 60, &[(5, 4.0), (30, 2.0)], 19);
        let cfg = OmpConfig { track_coefficients: true, ..OmpConfig::default() };
        let r = omp(&phi, &y, &cfg).unwrap();
        for (k, rec) in r.trace.iter().enumerate() {
            let c = rec.coefficients.as_ref().expect("coefficients tracked");
            assert_eq!(c.len(), k + 1);
        }
        // Untracked by default.
        let r2 = omp(&phi, &y, &OmpConfig::default()).unwrap();
        assert!(r2.trace.iter().all(|t| t.coefficients.is_none()));
    }

    #[test]
    fn stall_guard_fires_on_unreachable_tolerance() {
        // Noisy measurement that no sparse combination fits exactly: once the
        // support no longer improves the fit, the guard must stop the run
        // instead of exhausting the dictionary.
        let spec = MeasurementSpec::new(12, 30, 23).unwrap();
        let phi = spec.materialize();
        let mut y = phi.matvec(&SparseVector::new(30, vec![(4, 5.0)]).unwrap().to_dense()).unwrap();
        // Perturb with a fixed non-representable component.
        for i in 0..y.len() {
            y[i] += ((i * 7919 % 13) as f64 - 6.0) * 1e-3;
        }
        let cfg = OmpConfig { residual_tolerance: 0.0, ..OmpConfig::default() };
        let r = omp(&phi, &y, &cfg).unwrap();
        // With M=12 rows the residual hits ~0 after 12 independent columns;
        // the stall guard (or rank exhaustion) must stop before scanning all 30.
        assert!(r.support.len() <= 13, "stopped after {} columns", r.support.len());
        assert!(
            matches!(
                r.stop,
                StopReason::ResidualStall
                    | StopReason::RankExhausted
                    | StopReason::ResidualTolerance
            ),
            "stop = {:?}",
            r.stop
        );
    }

    #[test]
    fn dictionary_exhausted_when_budget_allows() {
        // Two axis columns in R³ and a target with mass on the third axis:
        // the dictionary runs out before the residual can reach zero.
        let phi = ColMatrix::from_columns(&[
            Vector::from_vec(vec![1.0, 0.0, 0.0]),
            Vector::from_vec(vec![0.0, 1.0, 0.0]),
        ])
        .unwrap();
        let y = Vector::from_vec(vec![1.0, 2.0, 3.0]);
        let cfg = OmpConfig { residual_tolerance: 0.0, stall_guard: false, ..OmpConfig::default() };
        let r = omp(&phi, &y, &cfg).unwrap();
        assert_eq!(r.stop, StopReason::DictionaryExhausted);
        assert_eq!(r.support.len(), 2);
        assert!((r.residual_norm - 3.0).abs() < 1e-12);
    }

    #[test]
    fn identity_dictionary_reads_off_entries() {
        let phi = ColMatrix::identity(4);
        let y = Vector::from_vec(vec![0.0, 7.0, 0.0, -2.0]);
        let r = omp(&phi, &y, &OmpConfig::default()).unwrap();
        let rec = r.to_sparse(4).unwrap();
        assert_eq!(rec.get(1), 7.0);
        assert_eq!(rec.get(3), -2.0);
        assert_eq!(rec.nnz(), 2);
    }

    #[test]
    fn fused_matches_reference_on_fixed_instance() {
        let (phi, y, _) = sparse_instance(40, 120, &[(8, 6.0), (55, -4.0), (99, 2.5)], 29);
        let fused = omp(&phi, &y, &OmpConfig::default()).unwrap();
        let reference =
            omp(&phi, &y, &OmpConfig { kernel: OmpKernel::Reference, ..OmpConfig::default() })
                .unwrap();
        assert_eq!(fused.support, reference.support);
        assert_eq!(fused.stop, reference.stop);
        for (a, b) in fused.coefficients.iter().zip(reference.coefficients.iter()) {
            // Both kernels solve the final coefficients through the same QR,
            // so agreement is bitwise.
            assert_eq!(a.to_bits(), b.to_bits());
        }
        let scale = y.norm2();
        assert!((fused.residual_norm - reference.residual_norm).abs() <= 1e-10 * scale.max(1.0));
    }

    #[test]
    fn fused_is_bit_identical_across_worker_counts() {
        // d = 2500 spans two COL_BLOCK blocks; par_min_work: 0 forces the
        // exec pool on even for this small instance.
        let (phi, y, _) = sparse_instance(16, 2500, &[(100, 5.0), (2300, -3.0)], 31);
        let base = OmpConfig { par_min_work: 0, ..OmpConfig::default() };
        let seq = omp(&phi, &y, &OmpConfig { exec: ExecConfig::sequential(), ..base }).unwrap();
        for workers in [2, 8] {
            let par = omp(&phi, &y, &OmpConfig { exec: ExecConfig::with_workers(workers), ..base })
                .unwrap();
            assert_eq!(par.support, seq.support, "workers = {workers}");
            assert_eq!(par.stop, seq.stop);
            assert_eq!(par.residual_norm.to_bits(), seq.residual_norm.to_bits());
            for (a, b) in par.coefficients.iter().zip(seq.coefficients.iter()) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
            for (ta, tb) in par.trace.iter().zip(seq.trace.iter()) {
                assert_eq!(ta.residual_norm.to_bits(), tb.residual_norm.to_bits());
            }
        }
    }

    #[test]
    fn kernel_names_are_stable() {
        assert_eq!(OmpKernel::Fused.as_str(), "fused");
        assert_eq!(OmpKernel::Reference.as_str(), "reference");
        assert_eq!(OmpConfig::default().kernel, OmpKernel::Fused);
    }

    #[test]
    fn op_path_on_dense_backend_matches_matrix_path_bitwise() {
        // The operator scan regenerates columns through the same blocked
        // gemv kernel the matrix path uses (column-independent), so the
        // dense backend must agree with the materialized run bit-for-bit.
        let (phi, y, _) = sparse_instance(40, 120, &[(8, 6.0), (55, -4.0), (99, 2.5)], 29);
        let op = MeasurementOperator::dense(40, 120, 29).unwrap();
        let via_matrix = omp(&phi, &y, &OmpConfig::default()).unwrap();
        let via_op = omp_with_op(&op, &y, &OmpConfig::default()).unwrap();
        assert_eq!(via_op.support, via_matrix.support);
        assert_eq!(via_op.stop, via_matrix.stop);
        assert_eq!(via_op.residual_norm.to_bits(), via_matrix.residual_norm.to_bits());
        for (a, b) in via_op.coefficients.iter().zip(via_matrix.coefficients.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn op_fused_matches_op_reference_on_every_backend() {
        let ops = [
            MeasurementOperator::dense(40, 120, 29).unwrap(),
            MeasurementOperator::srht(40, 120, 29).unwrap(),
            MeasurementOperator::seeded_sparse(40, 120, 29, 8).unwrap(),
        ];
        for op in &ops {
            let truth = SparseVector::new(120, vec![(8, 6.0), (55, -4.0), (99, 2.5)]).unwrap();
            let y = op.apply(truth.to_dense().as_slice()).unwrap();
            let fused = omp_with_op(op, &y, &OmpConfig::default()).unwrap();
            let reference = omp_with_op(
                op,
                &y,
                &OmpConfig { kernel: OmpKernel::Reference, ..Default::default() },
            )
            .unwrap();
            assert_eq!(fused.support, reference.support, "{:?}", op.kind());
            assert_eq!(fused.stop, reference.stop);
            for (a, b) in fused.coefficients.iter().zip(reference.coefficients.iter()) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
            // Each backend recovers the planted support exactly.
            let mut sup = fused.support.clone();
            sup.sort_unstable();
            assert_eq!(sup, vec![8, 55, 99], "{:?}", op.kind());
        }
    }

    #[test]
    fn colmatrix_implements_op_dictionary() {
        let (phi, y, _) = sparse_instance(30, 90, &[(5, 4.0), (70, -2.0)], 41);
        let direct = omp(&phi, &y, &OmpConfig::default()).unwrap();
        let via_dict = omp_with_op(&phi, &y, &OmpConfig::default()).unwrap();
        assert_eq!(direct.support, via_dict.support);
        assert_eq!(direct.stop, via_dict.stop);
    }

    #[test]
    fn op_path_checks_dimensions() {
        let op = MeasurementOperator::srht(10, 20, 1).unwrap();
        assert!(omp_with_op(&op, &Vector::zeros(11), &OmpConfig::default()).is_err());
    }
}
