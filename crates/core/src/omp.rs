//! Orthogonal Matching Pursuit.
//!
//! The greedy recovery algorithm of Pati et al. / Tropp & Gilbert that the
//! paper uses as its subroutine (Algorithm 2). Each iteration:
//!
//! 1. scans the dictionary for the column with the largest `|⟨φ, r⟩|`,
//! 2. appends that column to the active set,
//! 3. re-projects `y` onto the active span (via incremental QR — the
//!    "QR factorization with Gram–Schmidt process" of Section 5),
//! 4. updates the residual `r = y − proj(y, Φ*)`.
//!
//! Termination mirrors the paper's production concerns:
//! - an iteration budget `R` (Section 5 tunes `R = f(k) ∈ [2k, 5k]`),
//! - a residual tolerance (exact recovery reached),
//! - the **residual-stall guard**: "terminate the recovery process once the
//!   residual stops decreasing", the paper's fix for floating-point error
//!   accumulation in Gram–Schmidt QR.

use crate::sparse::SparseVector;
use cso_linalg::{ColMatrix, IncrementalQr, LinalgError, Vector};
use cso_obs::{Recorder, Value};

/// Why an OMP run stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The iteration budget `R` was exhausted.
    MaxIterations,
    /// The residual norm fell below the tolerance — recovery is exact to
    /// working precision.
    ResidualTolerance,
    /// The residual stopped decreasing (floating-point stall guard from
    /// Section 5 of the paper).
    ResidualStall,
    /// The best remaining column was numerically inside the active span, so
    /// no further progress is possible.
    RankExhausted,
    /// Every dictionary column has already been selected.
    DictionaryExhausted,
}

impl StopReason {
    /// Stable lowercase name for traces and reports.
    pub fn as_str(&self) -> &'static str {
        match self {
            StopReason::MaxIterations => "max_iterations",
            StopReason::ResidualTolerance => "residual_tolerance",
            StopReason::ResidualStall => "residual_stall",
            StopReason::RankExhausted => "rank_exhausted",
            StopReason::DictionaryExhausted => "dictionary_exhausted",
        }
    }
}

/// Tuning knobs for [`omp`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OmpConfig {
    /// Iteration budget `R` (the paper's `f(k)`).
    pub max_iterations: usize,
    /// Stop when `‖r‖₂ ≤ residual_tolerance · ‖y‖₂`.
    pub residual_tolerance: f64,
    /// Enable the residual-stall termination guard.
    pub stall_guard: bool,
    /// Minimum relative residual decrease per iteration before the stall
    /// guard fires (only meaningful when `stall_guard` is set).
    pub min_relative_decrease: f64,
    /// Record the full least-squares coefficient vector after every
    /// iteration (needed for the paper's mode-vs-iteration traces,
    /// Figures 4(b) and 9; costs one `O(k²)` solve per iteration).
    pub track_coefficients: bool,
}

impl Default for OmpConfig {
    fn default() -> Self {
        OmpConfig {
            max_iterations: usize::MAX,
            residual_tolerance: 1e-9,
            stall_guard: true,
            min_relative_decrease: 1e-12,
            track_coefficients: false,
        }
    }
}

impl OmpConfig {
    /// Config with an explicit iteration budget and defaults elsewhere.
    pub fn with_max_iterations(r: usize) -> Self {
        OmpConfig { max_iterations: r, ..OmpConfig::default() }
    }
}

/// Per-iteration record of an OMP run.
#[derive(Debug, Clone)]
pub struct IterationRecord {
    /// Dictionary column selected this iteration.
    pub selected: usize,
    /// Residual norm *after* re-projection.
    pub residual_norm: f64,
    /// Least-squares coefficients over the support selected so far, in
    /// selection order. Populated only when
    /// [`OmpConfig::track_coefficients`] is set.
    pub coefficients: Option<Vec<f64>>,
}

/// Output of an OMP run.
#[derive(Debug, Clone)]
pub struct OmpResult {
    /// Selected column indices, in selection order.
    pub support: Vec<usize>,
    /// Final least-squares coefficients, aligned with `support`.
    pub coefficients: Vec<f64>,
    /// Final residual norm.
    pub residual_norm: f64,
    /// Why the run stopped.
    pub stop: StopReason,
    /// Per-iteration trace.
    pub trace: Vec<IterationRecord>,
}

impl OmpResult {
    /// Assembles the recovered signal as a sparse `dim`-dimensional vector.
    pub fn to_sparse(&self, dim: usize) -> Result<SparseVector, LinalgError> {
        SparseVector::new(
            dim,
            self.support.iter().copied().zip(self.coefficients.iter().copied()).collect(),
        )
    }

    /// Number of iterations executed.
    pub fn iterations(&self) -> usize {
        self.trace.len()
    }
}

/// Runs OMP against a materialized dictionary.
///
/// `dictionary` is `M × D` (for BOMP, `D = N + 1` with the bias column
/// first); `y` has length `M`. Errors on a dimension mismatch or an empty
/// measurement.
pub fn omp(
    dictionary: &ColMatrix,
    y: &Vector,
    config: &OmpConfig,
) -> Result<OmpResult, LinalgError> {
    omp_traced(dictionary, y, config, &Recorder::disabled())
}

/// As [`omp`], recording a `recover.omp` span with one `omp.iter` event per
/// iteration (selected atom, residual norm, relative residual decrease) and
/// a final `omp.stop` event into `rec`.
///
/// With a disabled recorder every instrumentation point reduces to a single
/// branch, so this path is what [`omp`] itself runs.
pub fn omp_traced(
    dictionary: &ColMatrix,
    y: &Vector,
    config: &OmpConfig,
    rec: &Recorder,
) -> Result<OmpResult, LinalgError> {
    if y.len() != dictionary.rows() {
        return Err(LinalgError::DimensionMismatch {
            op: "omp",
            expected: (dictionary.rows(), 1),
            actual: (y.len(), 1),
        });
    }
    if dictionary.rows() == 0 || dictionary.cols() == 0 {
        return Err(LinalgError::Empty { op: "omp" });
    }

    let _span = rec.span_with(
        "recover.omp",
        &[
            ("rows", Value::U64(dictionary.rows() as u64)),
            ("cols", Value::U64(dictionary.cols() as u64)),
        ],
    );
    let y_norm = y.norm2();
    let abs_tol = config.residual_tolerance * y_norm;
    let d = dictionary.cols();

    let mut qr = IncrementalQr::new(dictionary.rows());
    let mut selected = vec![false; d];
    let mut support: Vec<usize> = Vec::new();
    let mut trace: Vec<IterationRecord> = Vec::new();
    let mut residual = y.clone();
    let mut prev_norm = y_norm;

    let stop = loop {
        if support.len() >= config.max_iterations {
            break StopReason::MaxIterations;
        }
        if residual.norm2() <= abs_tol {
            break StopReason::ResidualTolerance;
        }
        if support.len() == d {
            break StopReason::DictionaryExhausted;
        }
        // Column selection: argmax |⟨φ_j, r⟩| over unselected columns.
        // Ties break to the lowest index for determinism.
        let best = select_column(dictionary, &residual, &selected);
        let (j, _) = best.expect("unselected column exists");
        match qr.push_column(dictionary.col(j)) {
            Ok(()) => {}
            Err(LinalgError::RankDeficient { .. }) => break StopReason::RankExhausted,
            Err(e) => return Err(e),
        }
        selected[j] = true;
        support.push(j);
        residual = qr.residual(y.as_slice())?;
        let norm = residual.norm2();
        let coefficients = if config.track_coefficients {
            Some(qr.solve_least_squares(y.as_slice())?.into_vec())
        } else {
            None
        };
        trace.push(IterationRecord { selected: j, residual_norm: norm, coefficients });
        rec.event(
            "omp.iter",
            &[
                ("iter", Value::U64(trace.len() as u64)),
                ("atom", Value::U64(j as u64)),
                ("residual", Value::F64(norm)),
                (
                    "rel_decrease",
                    Value::F64(if prev_norm > 0.0 { 1.0 - norm / prev_norm } else { 0.0 }),
                ),
            ],
        );
        if config.stall_guard && norm >= prev_norm * (1.0 - config.min_relative_decrease) {
            break StopReason::ResidualStall;
        }
        prev_norm = norm;
    };

    let coefficients = if support.is_empty() {
        Vec::new()
    } else {
        qr.solve_least_squares(y.as_slice())?.into_vec()
    };
    let residual_norm = residual.norm2();
    if rec.is_enabled() {
        rec.event(
            "omp.stop",
            &[
                ("reason", Value::from(stop.as_str())),
                ("iterations", Value::U64(trace.len() as u64)),
                ("residual", Value::F64(residual_norm)),
                ("stall_guard", Value::Bool(config.stall_guard)),
            ],
        );
    }
    Ok(OmpResult { support, coefficients, residual_norm, stop, trace })
}

/// Finds the unselected column with the largest `|⟨φ_j, r⟩|`, ties to the
/// lowest index. The scan dominates OMP's runtime (`O(M·D)` per iteration),
/// so large dictionaries are scanned across threads; chunk-local winners
/// are reduced with the same ordering, keeping the result deterministic.
fn select_column(
    dictionary: &ColMatrix,
    residual: &Vector,
    selected: &[bool],
) -> Option<(usize, f64)> {
    const PAR_MIN_WORK: usize = 1 << 21;
    let d = dictionary.cols();
    let work = d * dictionary.rows();
    let threads = std::thread::available_parallelism().map_or(1, |t| t.get());

    let scan = |range: std::ops::Range<usize>| -> Option<(usize, f64)> {
        let mut best: Option<(usize, f64)> = None;
        for j in range {
            if selected[j] {
                continue;
            }
            let c = cso_linalg::vector::dot(dictionary.col(j), residual.as_slice()).abs();
            match best {
                Some((_, b)) if b >= c => {}
                _ => best = Some((j, c)),
            }
        }
        best
    };

    if threads == 1 || work < PAR_MIN_WORK {
        return scan(0..d);
    }
    let chunk = d.div_ceil(threads);
    let mut partials: Vec<Option<(usize, f64)>> = Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..d)
            .step_by(chunk)
            .map(|start| {
                let range = start..(start + chunk).min(d);
                scope.spawn(move || scan(range))
            })
            .collect();
        for h in handles {
            partials.push(h.join().expect("scan thread panicked"));
        }
    });
    // Chunks are in ascending index order, so `>` (strictly better) keeps
    // the lowest index on ties — identical to the serial scan.
    partials.into_iter().flatten().fold(None, |acc, (j, c)| match acc {
        Some((_, b)) if b >= c => acc,
        _ => Some((j, c)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measurement::MeasurementSpec;

    /// Builds a random Gaussian dictionary and a sparse ground truth.
    fn sparse_instance(
        m: usize,
        n: usize,
        support: &[(usize, f64)],
        seed: u64,
    ) -> (ColMatrix, Vector, SparseVector) {
        let spec = MeasurementSpec::new(m, n, seed).unwrap();
        let phi = spec.materialize();
        let truth = SparseVector::new(n, support.to_vec()).unwrap();
        let y = phi.matvec(&truth.to_dense()).unwrap();
        (phi, y, truth)
    }

    #[test]
    fn recovers_exactly_sparse_signal() {
        let (phi, y, truth) = sparse_instance(40, 100, &[(3, 5.0), (42, -2.0), (77, 9.0)], 7);
        let r = omp(&phi, &y, &OmpConfig::default()).unwrap();
        assert_eq!(r.stop, StopReason::ResidualTolerance);
        let rec = r.to_sparse(100).unwrap();
        assert!(
            rec.l2_distance(&truth).unwrap() < 1e-8,
            "d = {}",
            rec.l2_distance(&truth).unwrap()
        );
        let mut sup = r.support.clone();
        sup.sort_unstable();
        assert_eq!(sup, vec![3, 42, 77]);
    }

    #[test]
    fn selects_largest_component_first() {
        let (phi, y, _) = sparse_instance(50, 80, &[(10, 1.0), (20, 100.0)], 3);
        let r = omp(&phi, &y, &OmpConfig::default()).unwrap();
        assert_eq!(r.support[0], 20, "dominant component should be picked first");
    }

    #[test]
    fn respects_iteration_budget() {
        let (phi, y, _) = sparse_instance(40, 100, &[(1, 3.0), (2, 3.0), (3, 3.0), (4, 3.0)], 11);
        let r = omp(&phi, &y, &OmpConfig::with_max_iterations(2)).unwrap();
        assert_eq!(r.stop, StopReason::MaxIterations);
        assert_eq!(r.iterations(), 2);
        assert_eq!(r.support.len(), 2);
    }

    #[test]
    fn zero_measurement_stops_immediately() {
        let spec = MeasurementSpec::new(10, 20, 5).unwrap();
        let phi = spec.materialize();
        let r = omp(&phi, &Vector::zeros(10), &OmpConfig::default()).unwrap();
        assert_eq!(r.stop, StopReason::ResidualTolerance);
        assert!(r.support.is_empty());
        assert!(r.coefficients.is_empty());
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let phi = ColMatrix::zeros(4, 6);
        assert!(omp(&phi, &Vector::zeros(5), &OmpConfig::default()).is_err());
    }

    #[test]
    fn residual_norms_are_monotone_while_running() {
        let (phi, y, _) = sparse_instance(30, 60, &[(5, 4.0), (6, -3.0), (30, 2.0)], 17);
        let r = omp(&phi, &y, &OmpConfig::default()).unwrap();
        for w in r.trace.windows(2) {
            assert!(
                w[1].residual_norm <= w[0].residual_norm + 1e-12,
                "residual must not increase before the stall guard fires"
            );
        }
    }

    #[test]
    fn trace_records_coefficients_when_asked() {
        let (phi, y, _) = sparse_instance(30, 60, &[(5, 4.0), (30, 2.0)], 19);
        let cfg = OmpConfig { track_coefficients: true, ..OmpConfig::default() };
        let r = omp(&phi, &y, &cfg).unwrap();
        for (k, rec) in r.trace.iter().enumerate() {
            let c = rec.coefficients.as_ref().expect("coefficients tracked");
            assert_eq!(c.len(), k + 1);
        }
        // Untracked by default.
        let r2 = omp(&phi, &y, &OmpConfig::default()).unwrap();
        assert!(r2.trace.iter().all(|t| t.coefficients.is_none()));
    }

    #[test]
    fn stall_guard_fires_on_unreachable_tolerance() {
        // Noisy measurement that no sparse combination fits exactly: once the
        // support no longer improves the fit, the guard must stop the run
        // instead of exhausting the dictionary.
        let spec = MeasurementSpec::new(12, 30, 23).unwrap();
        let phi = spec.materialize();
        let mut y = phi.matvec(&SparseVector::new(30, vec![(4, 5.0)]).unwrap().to_dense()).unwrap();
        // Perturb with a fixed non-representable component.
        for i in 0..y.len() {
            y[i] += ((i * 7919 % 13) as f64 - 6.0) * 1e-3;
        }
        let cfg = OmpConfig { residual_tolerance: 0.0, ..OmpConfig::default() };
        let r = omp(&phi, &y, &cfg).unwrap();
        // With M=12 rows the residual hits ~0 after 12 independent columns;
        // the stall guard (or rank exhaustion) must stop before scanning all 30.
        assert!(r.support.len() <= 13, "stopped after {} columns", r.support.len());
        assert!(
            matches!(
                r.stop,
                StopReason::ResidualStall
                    | StopReason::RankExhausted
                    | StopReason::ResidualTolerance
            ),
            "stop = {:?}",
            r.stop
        );
    }

    #[test]
    fn dictionary_exhausted_when_budget_allows() {
        // Two axis columns in R³ and a target with mass on the third axis:
        // the dictionary runs out before the residual can reach zero.
        let phi = ColMatrix::from_columns(&[
            Vector::from_vec(vec![1.0, 0.0, 0.0]),
            Vector::from_vec(vec![0.0, 1.0, 0.0]),
        ])
        .unwrap();
        let y = Vector::from_vec(vec![1.0, 2.0, 3.0]);
        let cfg = OmpConfig { residual_tolerance: 0.0, stall_guard: false, ..OmpConfig::default() };
        let r = omp(&phi, &y, &cfg).unwrap();
        assert_eq!(r.stop, StopReason::DictionaryExhausted);
        assert_eq!(r.support.len(), 2);
        assert!((r.residual_norm - 3.0).abs() < 1e-12);
    }

    #[test]
    fn identity_dictionary_reads_off_entries() {
        let phi = ColMatrix::identity(4);
        let y = Vector::from_vec(vec![0.0, 7.0, 0.0, -2.0]);
        let r = omp(&phi, &y, &OmpConfig::default()).unwrap();
        let rec = r.to_sparse(4).unwrap();
        assert_eq!(rec.get(1), 7.0);
        assert_eq!(rec.get(3), -2.0);
        assert_eq!(rec.nnz(), 2);
    }
}
