//! # cso-core
//!
//! The primary contribution of *"Distributed Outlier Detection using
//! Compressive Sensing"* (SIGMOD'15): compressive-sensing sketches for
//! distributed aggregation, and the **BOMP** recovery algorithm that finds
//! both the unknown mode and the outliers of the aggregated data from a
//! logarithmic-size sketch.
//!
//! ## Pipeline
//!
//! ```
//! use cso_core::{MeasurementSpec, bomp, BompConfig};
//!
//! // Global key space of N = 200 keys, sketch size M = 60, shared seed.
//! let spec = MeasurementSpec::new(60, 200, 7).unwrap();
//!
//! // Two nodes hold additive slices of the global vector.
//! let mut a = vec![900.0; 200];
//! let mut b = vec![900.0; 200];
//! a[17] = 5000.0;     // a global outlier, only visible after aggregation
//! b[17] = 4000.0;
//!
//! // Each node ships only its M-length sketch.
//! let ya = spec.measure_dense(&a).unwrap();
//! let yb = spec.measure_dense(&b).unwrap();
//! let y = ya.add(&yb).unwrap();   // sketches add: y = Φ0·(a + b)
//!
//! // The aggregator recovers mode and outliers with BOMP.
//! let result = bomp(&spec, &y, &BompConfig::default()).unwrap();
//! assert!((result.mode - 1800.0).abs() < 1e-6);
//! assert_eq!(result.top_k(1)[0].index, 17);
//! ```
//!
//! ## Modules
//!
//! - [`measurement`] — seeded Gaussian measurement matrices (`Φ0`);
//! - [`ops`] — the [`MeasurementOp`] trait and matrix-free backends
//!   (SRHT, seeded sparse) behind the same seeded contract;
//! - [`omp`](mod@crate::omp) — orthogonal matching pursuit with the paper's QR-based inner
//!   loop and residual-stall guard;
//! - [`bomp`](mod@crate::bomp) — Biased OMP (Algorithm 1), recovering an unknown mode;
//! - [`bp`](mod@crate::bp) — basis pursuit (ADMM), the alternative recovery baseline;
//! - [`outlier`] — exact k-outlier / top-k / absolute-top-k semantics;
//! - [`metrics`] — the paper's EK / EV quality metrics;
//! - [`conjectures`] — numerical verification of the paper's Conjectures
//!   1 and 2;
//! - [`sparse`] — sparse recovered-signal representation.

#![warn(missing_docs)]

pub mod aggregates;
pub mod bomp;
pub mod bp;
pub mod conjectures;
pub mod cosamp;
pub mod measurement;
pub mod metrics;
pub mod omp;
pub mod ops;
pub mod outlier;
pub mod sparse;
pub mod streaming;

pub use bomp::{
    bomp, bomp_traced, bomp_with_matrix, bomp_with_matrix_traced, bomp_with_op,
    bomp_with_op_traced, omp_with_known_mode, BompConfig, BompResult, RecoveredOutlier,
};
pub use bp::{basis_pursuit, BpConfig, BpResult};
pub use cosamp::{cosamp, CosampConfig, CosampResult};
pub use measurement::MeasurementSpec;
pub use metrics::{error_on_key, error_on_value, outlier_errors};
pub use omp::{
    omp, omp_traced, omp_with_op, omp_with_op_traced, IterationRecord, OmpConfig, OmpDictionary,
    OmpKernel, OmpResult, StopReason,
};
pub use ops::{
    MeasurementOp, MeasurementOperator, OpDescriptor, OpKind, SeededSparseOp, SketchBackend, SrhtOp,
};
pub use outlier::KeyValue;
pub use sparse::SparseVector;
pub use streaming::streaming_bomp;
