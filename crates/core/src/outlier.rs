//! Exact (ground-truth) outlier semantics.
//!
//! The paper is careful to distinguish three different "top" notions on the
//! same data (Figure 1(b)): the top-k *values*, the top-k *absolute* values,
//! and the k-*outliers* — the keys furthest from the mode `b`. These exact
//! definitions are what the distributed protocols are measured against.

use cso_linalg::stats;
use cso_linalg::LinalgError;

/// A key index paired with its aggregated value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KeyValue {
    /// Position in the global key dictionary.
    pub index: usize,
    /// Aggregated value.
    pub value: f64,
}

/// Exact mode of a majority-dominated vector: the single value held by more
/// than half the entries, when one exists (paper Definition 2 requires
/// `|{i : xᵢ = b}| > N/2`; note the paper's `O` is written with the
/// complement convention — we use the plain majority reading).
pub fn exact_majority_mode(x: &[f64]) -> Option<f64> {
    if x.is_empty() {
        return None;
    }
    // Boyer–Moore majority vote, then verification.
    let mut candidate = x[0];
    let mut count = 0usize;
    for &v in x {
        if count == 0 {
            candidate = v;
            count = 1;
        } else if v == candidate {
            count += 1;
        } else {
            count -= 1;
        }
    }
    let occurrences = x.iter().filter(|&&v| v == candidate).count();
    (occurrences * 2 > x.len()).then_some(candidate)
}

/// Estimated mode for "sparse-like" data that concentrates *around* (not
/// exactly at) a value: histogram mode with a bin width of `range/256`.
pub fn estimated_mode(x: &[f64]) -> Result<f64, LinalgError> {
    if x.is_empty() {
        return Err(LinalgError::Empty { op: "estimated_mode" });
    }
    let min = x.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = x.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let range = max - min;
    if range == 0.0 {
        return Ok(min);
    }
    stats::histogram_mode(x, range / 256.0)
}

/// The `k` keys whose values are furthest from `mode`, sorted by decreasing
/// `|value − mode|` with index tie-breaking — the paper's k-outlier set
/// `O_k` (Section 2.1).
pub fn k_outliers(x: &[f64], mode: f64, k: usize) -> Vec<KeyValue> {
    let mut kv: Vec<KeyValue> =
        x.iter().enumerate().map(|(index, &value)| KeyValue { index, value }).collect();
    sort_by_deviation(&mut kv, mode);
    kv.truncate(k);
    kv
}

/// As [`k_outliers`], but only counts keys whose value actually differs from
/// the mode — on strictly majority-dominated data this returns `min(k, |O|)`
/// elements, exactly matching the paper's definition.
pub fn k_outliers_strict(x: &[f64], mode: f64, k: usize) -> Vec<KeyValue> {
    let mut kv: Vec<KeyValue> = x
        .iter()
        .enumerate()
        .filter(|&(_, &v)| v != mode)
        .map(|(index, &value)| KeyValue { index, value })
        .collect();
    sort_by_deviation(&mut kv, mode);
    kv.truncate(k);
    kv
}

/// The `k` largest values (the classic distributed top-k).
pub fn top_k(x: &[f64], k: usize) -> Vec<KeyValue> {
    let mut kv: Vec<KeyValue> =
        x.iter().enumerate().map(|(index, &value)| KeyValue { index, value }).collect();
    kv.sort_by(|a, b| b.value.partial_cmp(&a.value).expect("finite").then(a.index.cmp(&b.index)));
    kv.truncate(k);
    kv
}

/// The `k` largest absolute values.
pub fn absolute_top_k(x: &[f64], k: usize) -> Vec<KeyValue> {
    let mut kv: Vec<KeyValue> =
        x.iter().enumerate().map(|(index, &value)| KeyValue { index, value }).collect();
    kv.sort_by(|a, b| {
        b.value.abs().partial_cmp(&a.value.abs()).expect("finite").then(a.index.cmp(&b.index))
    });
    kv.truncate(k);
    kv
}

fn sort_by_deviation(kv: &mut [KeyValue], mode: f64) {
    kv.sort_by(|a, b| {
        (b.value - mode)
            .abs()
            .partial_cmp(&(a.value - mode).abs())
            .expect("finite")
            .then(a.index.cmp(&b.index))
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn majority_mode_found_when_dominant() {
        let mut x = vec![7.0; 10];
        x.extend([1.0, 2.0, 3.0]);
        assert_eq!(exact_majority_mode(&x), Some(7.0));
    }

    #[test]
    fn majority_mode_absent_when_no_majority() {
        assert_eq!(exact_majority_mode(&[1.0, 2.0, 3.0, 1.0]), None);
        assert_eq!(exact_majority_mode(&[]), None);
        // Exactly half is not a majority.
        assert_eq!(exact_majority_mode(&[5.0, 5.0, 1.0, 2.0]), None);
    }

    #[test]
    fn estimated_mode_finds_concentration_point() {
        let mut x: Vec<f64> = (0..100).map(|i| 1800.0 + (i % 5) as f64 * 0.1).collect();
        x.extend([0.0, 9000.0, -500.0]);
        let m = estimated_mode(&x).unwrap();
        assert!((m - 1800.0).abs() < 50.0, "mode = {m}");
    }

    #[test]
    fn estimated_mode_constant_vector() {
        assert_eq!(estimated_mode(&[3.0, 3.0, 3.0]).unwrap(), 3.0);
        assert!(estimated_mode(&[]).is_err());
    }

    #[test]
    fn figure_1b_semantics_differ() {
        // A vector where top-k, absolute top-k and outlier-k are all
        // different sets — the paper's Figure 1(b) point.
        // mode = 1800; values: one huge positive, one large negative,
        // one near-zero, rest at mode.
        let mut x = vec![1800.0; 12];
        x[0] = 2500.0; // top value (but modest deviation)
        x[1] = -900.0; // most negative: large deviation, large abs
        x[2] = 10.0; //   near zero: large deviation, small value
        let k = 3;
        let top: Vec<usize> = top_k(&x, k).iter().map(|o| o.index).collect();
        let abs_top: Vec<usize> = absolute_top_k(&x, k).iter().map(|o| o.index).collect();
        let out: Vec<usize> = k_outliers(&x, 1800.0, k).iter().map(|o| o.index).collect();
        // Top-k by value: 2500, then the 1800s — never picks -900 or 10.
        assert_eq!(top[0], 0);
        assert!(!top.contains(&1) && !top.contains(&2));
        // Absolute top-k: 2500 and the 1800s beat |−900| and |10|.
        assert!(abs_top.contains(&0));
        assert!(!abs_top.contains(&2));
        // Outliers by |v − 1800|: −900 (2700), 10 (1790), 2500 (700).
        assert_eq!(out, vec![1, 2, 0]);
    }

    #[test]
    fn k_outliers_orders_by_deviation_then_index() {
        let x = [0.0, 10.0, -10.0, 5.0];
        let out = k_outliers(&x, 0.0, 4);
        assert_eq!(out[0].index, 1, "equal deviations tie-break by index");
        assert_eq!(out[1].index, 2);
        assert_eq!(out[2].index, 3);
        assert_eq!(out[3].index, 0);
    }

    #[test]
    fn k_outliers_strict_excludes_mode_values() {
        let x = [5.0, 5.0, 9.0, 5.0, 1.0];
        let out = k_outliers_strict(&x, 5.0, 10);
        assert_eq!(out.len(), 2);
        let idx: Vec<usize> = out.iter().map(|o| o.index).collect();
        assert_eq!(idx, vec![2, 4]);
    }

    #[test]
    fn top_k_truncates_and_orders() {
        let x = [3.0, 1.0, 4.0, 1.0, 5.0];
        let t = top_k(&x, 2);
        assert_eq!(t[0].index, 4);
        assert_eq!(t[1].index, 2);
    }

    #[test]
    fn absolute_top_k_uses_magnitude() {
        let x = [3.0, -10.0, 4.0];
        let t = absolute_top_k(&x, 1);
        assert_eq!(t[0].index, 1);
    }

    #[test]
    fn k_larger_than_n_returns_all() {
        let x = [1.0, 2.0];
        assert_eq!(top_k(&x, 10).len(), 2);
        assert_eq!(k_outliers(&x, 0.0, 10).len(), 2);
    }
}
