//! Sparse vector representation for recovered signals.

use cso_linalg::{LinalgError, Vector};

/// A sparse `N`-dimensional vector stored as sorted `(index, value)` pairs.
///
/// Recovery returns at most `R` non-zeros, so results are exchanged in this
/// form rather than as dense length-`N` buffers.
#[derive(Debug, Clone, PartialEq)]
pub struct SparseVector {
    dim: usize,
    /// Entries sorted by index, no duplicates, no explicit zeros.
    entries: Vec<(usize, f64)>,
}

impl SparseVector {
    /// Creates a sparse vector from unsorted entries. Duplicate indices
    /// accumulate; zeros are dropped. Errors on an index `>= dim`.
    pub fn new(dim: usize, mut entries: Vec<(usize, f64)>) -> Result<Self, LinalgError> {
        for &(i, _) in &entries {
            if i >= dim {
                return Err(LinalgError::DimensionMismatch {
                    op: "sparse_vector",
                    expected: (dim, 1),
                    actual: (i, 1),
                });
            }
        }
        entries.sort_by_key(|&(i, _)| i);
        let mut merged: Vec<(usize, f64)> = Vec::with_capacity(entries.len());
        for (i, v) in entries {
            match merged.last_mut() {
                Some((li, lv)) if *li == i => *lv += v,
                _ => merged.push((i, v)),
            }
        }
        merged.retain(|&(_, v)| v != 0.0);
        Ok(SparseVector { dim, entries: merged })
    }

    /// The all-zero sparse vector of dimension `dim`.
    pub fn zeros(dim: usize) -> Self {
        SparseVector { dim, entries: Vec::new() }
    }

    /// Builds from a dense slice, keeping entries with `|v| > tol`.
    pub fn from_dense(x: &[f64], tol: f64) -> Self {
        let entries =
            x.iter().enumerate().filter(|(_, v)| v.abs() > tol).map(|(i, &v)| (i, v)).collect();
        SparseVector { dim: x.len(), entries }
    }

    /// Ambient dimension `N`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// Sorted `(index, value)` pairs.
    pub fn entries(&self) -> &[(usize, f64)] {
        &self.entries
    }

    /// Value at `index` (zero when absent). Panics past the dimension.
    pub fn get(&self, index: usize) -> f64 {
        assert!(index < self.dim, "index {index} out of bounds ({})", self.dim);
        match self.entries.binary_search_by_key(&index, |&(i, _)| i) {
            Ok(pos) => self.entries[pos].1,
            Err(_) => 0.0,
        }
    }

    /// Expands to a dense [`Vector`].
    pub fn to_dense(&self) -> Vector {
        let mut d = vec![0.0; self.dim];
        for &(i, v) in &self.entries {
            d[i] = v;
        }
        Vector::from_vec(d)
    }

    /// `‖self − other‖₂` without densifying. Errors on dimension mismatch.
    pub fn l2_distance(&self, other: &SparseVector) -> Result<f64, LinalgError> {
        if self.dim != other.dim {
            return Err(LinalgError::DimensionMismatch {
                op: "l2_distance",
                expected: (self.dim, 1),
                actual: (other.dim, 1),
            });
        }
        let mut sum = 0.0;
        let (mut a, mut b) = (0usize, 0usize);
        while a < self.entries.len() || b < other.entries.len() {
            let d = match (self.entries.get(a), other.entries.get(b)) {
                (Some(&(ia, va)), Some(&(ib, vb))) => {
                    use std::cmp::Ordering::*;
                    match ia.cmp(&ib) {
                        Less => {
                            a += 1;
                            va
                        }
                        Greater => {
                            b += 1;
                            -vb
                        }
                        Equal => {
                            a += 1;
                            b += 1;
                            va - vb
                        }
                    }
                }
                (Some(&(_, va)), None) => {
                    a += 1;
                    va
                }
                (None, Some(&(_, vb))) => {
                    b += 1;
                    -vb
                }
                (None, None) => unreachable!(),
            };
            sum += d * d;
        }
        Ok(sum.sqrt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_sorts_merges_and_drops_zeros() {
        let s = SparseVector::new(10, vec![(5, 1.0), (2, 3.0), (5, -1.0), (7, 0.0)]).unwrap();
        assert_eq!(s.entries(), &[(2, 3.0)]);
        assert_eq!(s.nnz(), 1);
    }

    #[test]
    fn new_rejects_out_of_range() {
        assert!(SparseVector::new(3, vec![(3, 1.0)]).is_err());
    }

    #[test]
    fn get_and_to_dense() {
        let s = SparseVector::new(4, vec![(1, 2.0), (3, -1.0)]).unwrap();
        assert_eq!(s.get(0), 0.0);
        assert_eq!(s.get(1), 2.0);
        assert_eq!(s.to_dense().as_slice(), &[0.0, 2.0, 0.0, -1.0]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_past_dim_panics() {
        SparseVector::zeros(2).get(2);
    }

    #[test]
    fn from_dense_respects_tolerance() {
        let s = SparseVector::from_dense(&[0.0, 1e-12, 0.5], 1e-9);
        assert_eq!(s.entries(), &[(2, 0.5)]);
        assert_eq!(s.dim(), 3);
    }

    #[test]
    fn l2_distance_matches_dense_computation() {
        let a = SparseVector::new(6, vec![(0, 1.0), (3, 2.0)]).unwrap();
        let b = SparseVector::new(6, vec![(3, 2.0), (5, -4.0)]).unwrap();
        let dense = a.to_dense().sub(&b.to_dense()).unwrap().norm2();
        assert!((a.l2_distance(&b).unwrap() - dense).abs() < 1e-14);
        // Symmetry and self-distance.
        assert_eq!(a.l2_distance(&b).unwrap(), b.l2_distance(&a).unwrap());
        assert_eq!(a.l2_distance(&a).unwrap(), 0.0);
    }

    #[test]
    fn l2_distance_checks_dims() {
        let a = SparseVector::zeros(3);
        let b = SparseVector::zeros(4);
        assert!(a.l2_distance(&b).is_err());
    }

    #[test]
    fn zeros_has_no_entries() {
        let z = SparseVector::zeros(5);
        assert_eq!(z.nnz(), 0);
        assert_eq!(z.dim(), 5);
        assert_eq!(z.to_dense().as_slice(), &[0.0; 5]);
    }
}
