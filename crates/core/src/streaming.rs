//! Streaming (matrix-free) BOMP recovery.
//!
//! [`bomp`](crate::bomp::bomp) materializes the full `M × N` measurement
//! matrix — 4 GB at the paper's Figure 12 extreme (`N = 5M`, `M = 100`).
//! Because every column of `Φ0` regenerates deterministically from the
//! shared seed, the dictionary never actually needs to exist in memory:
//! each OMP iteration can stream columns through a fixed-size buffer,
//! keeping only the *selected* columns materialized.
//!
//! Memory drops from `O(M·N)` to `O(M·(R + chunk))`; arithmetic per
//! iteration is the same `O(M·N)` correlation scan plus column
//! regeneration. Selection order is identical to the in-memory
//! implementation (same dot products, same tie-breaking), so results are
//! bit-compatible — pinned by tests.

use crate::bomp::{BompConfig, BompResult, RecoveredOutlier};
use crate::measurement::MeasurementSpec;
use crate::omp::StopReason;
use crate::sparse::SparseVector;
use cso_linalg::{IncrementalQr, LinalgError, Vector};

/// Column chunk size for the streaming scan (columns regenerated per
/// refill; memory = `chunk · M` doubles).
const CHUNK_COLUMNS: usize = 512;

/// Runs BOMP without materializing `Φ0`.
///
/// Functionally equivalent to [`bomp`](crate::bomp::bomp) with the same
/// spec and config, but with `O(M·(R + 512))` memory. The `track_mode`
/// option is honored; coefficient tracking happens on the small selected
/// set only.
pub fn streaming_bomp(
    spec: &MeasurementSpec,
    y: &Vector,
    config: &BompConfig,
) -> Result<BompResult, LinalgError> {
    let m = spec.m;
    let n = spec.n;
    if y.len() != m {
        return Err(LinalgError::DimensionMismatch {
            op: "streaming_bomp",
            expected: (m, 1),
            actual: (y.len(), 1),
        });
    }

    // The extended dictionary column 0 (bias) is the only one we must
    // precompute — one full streaming pass.
    let bias = spec.bias_column();

    let y_norm = y.norm2();
    let abs_tol = config.omp.residual_tolerance * y_norm;
    let d = n + 1; // extended dictionary size

    let mut qr = IncrementalQr::new(m);
    let mut selected: Vec<usize> = Vec::new(); // extended indices, selection order
    let mut selected_cols: Vec<Vec<f64>> = Vec::new();
    let mut residual = y.clone();
    let mut prev_norm = y_norm;
    let mut mode_trace: Vec<f64> = Vec::new();
    let mut residual_trace: Vec<f64> = Vec::new();

    let mut chunk = vec![0.0f64; CHUNK_COLUMNS * m];

    let stop = loop {
        if selected.len() >= config.omp.max_iterations {
            break StopReason::MaxIterations;
        }
        if residual.norm2() <= abs_tol {
            break StopReason::ResidualTolerance;
        }
        if selected.len() == d {
            break StopReason::DictionaryExhausted;
        }

        // Streaming argmax |⟨φ_j, r⟩| over unselected extended columns.
        let mut best: Option<(usize, f64)> = None;
        let consider = |j: usize, col: &[f64], best: &mut Option<(usize, f64)>| {
            if selected.contains(&j) {
                return;
            }
            let c = cso_linalg::vector::dot(col, residual.as_slice()).abs();
            match *best {
                Some((_, b)) if b >= c => {}
                _ => *best = Some((j, c)),
            }
        };
        consider(0, &bias, &mut best);
        let mut start = 0usize;
        while start < n {
            let count = CHUNK_COLUMNS.min(n - start);
            for offset in 0..count {
                spec.fill_column(start + offset, &mut chunk[offset * m..(offset + 1) * m]);
            }
            for offset in 0..count {
                consider(start + offset + 1, &chunk[offset * m..(offset + 1) * m], &mut best);
            }
            start += count;
        }
        let (j, _) = best.expect("unselected column exists");

        // Materialize just the winning column.
        let col = if j == 0 { bias.clone() } else { spec.column(j - 1) };
        match qr.push_column(&col) {
            Ok(()) => {}
            Err(LinalgError::RankDeficient { .. }) => break StopReason::RankExhausted,
            Err(e) => return Err(e),
        }
        selected.push(j);
        selected_cols.push(col);
        residual = qr.residual(y.as_slice())?;
        let norm = residual.norm2();
        residual_trace.push(norm);
        if config.track_mode {
            let coeffs = qr.solve_least_squares(y.as_slice())?;
            let b = selected
                .iter()
                .position(|&c| c == 0)
                .map(|p| coeffs[p] / (n as f64).sqrt())
                .unwrap_or(0.0);
            mode_trace.push(b);
        }
        if config.omp.stall_guard && norm >= prev_norm * (1.0 - config.omp.min_relative_decrease) {
            break StopReason::ResidualStall;
        }
        prev_norm = norm;
    };

    // Final least squares and assembly (paper equation (4)).
    let coefficients = if selected.is_empty() {
        Vec::new()
    } else {
        qr.solve_least_squares(y.as_slice())?.into_vec()
    };
    let inv_sqrt_n = 1.0 / (n as f64).sqrt();
    let mut mode = 0.0;
    let mut bias_selected = false;
    let mut deviation_entries = Vec::with_capacity(selected.len());
    for (&col, &coef) in selected.iter().zip(coefficients.iter()) {
        if col == 0 {
            bias_selected = true;
            mode = coef * inv_sqrt_n;
        } else {
            deviation_entries.push((col - 1, coef));
        }
    }
    let deviations = SparseVector::new(n, deviation_entries)?;
    let mut outliers: Vec<RecoveredOutlier> = deviations
        .entries()
        .iter()
        .map(|&(i, z)| RecoveredOutlier { index: i, value: z + mode, deviation: z })
        .collect();
    outliers.sort_by(|a, b| {
        b.deviation
            .abs()
            .partial_cmp(&a.deviation.abs())
            .expect("finite deviations")
            .then(a.index.cmp(&b.index))
    });
    let iterations = residual_trace.len();
    Ok(BompResult {
        mode,
        bias_selected,
        outliers,
        deviations,
        iterations,
        stop,
        mode_trace,
        residual_trace,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bomp::bomp;

    fn instance(m: usize, n: usize, seed: u64) -> (MeasurementSpec, Vector, Vec<f64>) {
        let spec = MeasurementSpec::new(m, n, seed).unwrap();
        let mut x = vec![1800.0; n];
        x[n / 7] = 25_000.0;
        x[n / 3] = -9_000.0;
        x[n - 2] = 11_000.0;
        let y = spec.measure_dense(&x).unwrap();
        (spec, y, x)
    }

    #[test]
    fn matches_in_memory_bomp_exactly() {
        let (spec, y, _) = instance(60, 700, 5);
        let cfg = BompConfig::default();
        let mem = bomp(&spec, &y, &cfg).unwrap();
        let stream = streaming_bomp(&spec, &y, &cfg).unwrap();
        assert_eq!(mem.stop, stream.stop);
        assert_eq!(mem.iterations, stream.iterations);
        assert!((mem.mode - stream.mode).abs() < 1e-12);
        let a: Vec<usize> = mem.outliers.iter().map(|o| o.index).collect();
        let b: Vec<usize> = stream.outliers.iter().map(|o| o.index).collect();
        assert_eq!(a, b);
        for (x, y) in mem.outliers.iter().zip(&stream.outliers) {
            assert!((x.value - y.value).abs() < 1e-9);
        }
    }

    #[test]
    fn spans_multiple_chunks() {
        // n > CHUNK_COLUMNS exercises the refill loop boundaries.
        let (spec, y, x) = instance(48, CHUNK_COLUMNS * 2 + 37, 9);
        let r = streaming_bomp(&spec, &y, &BompConfig::default()).unwrap();
        assert!((r.mode - 1800.0).abs() < 1e-6);
        let found: Vec<usize> = r.top_k(3).iter().map(|o| o.index).collect();
        for idx in found {
            assert!((x[idx] - 1800.0).abs() > 1000.0, "key {idx} is a planted outlier");
        }
    }

    #[test]
    fn mode_trace_matches_in_memory() {
        let (spec, y, _) = instance(60, 600, 11);
        let cfg = BompConfig { track_mode: true, ..BompConfig::default() };
        let mem = bomp(&spec, &y, &cfg).unwrap();
        let stream = streaming_bomp(&spec, &y, &cfg).unwrap();
        assert_eq!(mem.mode_trace.len(), stream.mode_trace.len());
        for (a, b) in mem.mode_trace.iter().zip(&stream.mode_trace) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let spec = MeasurementSpec::new(10, 50, 1).unwrap();
        assert!(streaming_bomp(&spec, &Vector::zeros(9), &BompConfig::default()).is_err());
    }

    #[test]
    fn zero_measurement_is_trivial() {
        let spec = MeasurementSpec::new(10, 50, 1).unwrap();
        let r = streaming_bomp(&spec, &Vector::zeros(10), &BompConfig::default()).unwrap();
        assert_eq!(r.stop, StopReason::ResidualTolerance);
        assert_eq!(r.iterations, 0);
        assert_eq!(r.outliers.len(), 0);
    }
}
