//! Biased Orthogonal Matching Pursuit (BOMP) — the paper's Algorithm 1.
//!
//! Standard compressive-sensing recovery assumes the signal is sparse *at
//! zero*. Production aggregates instead concentrate around an unknown mode
//! `b` (Figure 1: most keys near 1800, a few far away). BOMP reduces that
//! case to the sparse one by the decomposition `x = b·1 + z`:
//!
//! ```text
//! y = Φ0·x = Φ0·(b·1 + z) = [ (1/√N)·Σφᵢ , Φ0 ] · [ √N·b , z ]ᵀ = Φ̃ · z̃
//! ```
//!
//! The extended vector `z̃` *is* sparse (one bias coordinate plus the
//! outlier deviations), so OMP applies. The recovered mode is
//! `b = z̃₀ / √N` and each recovered signal entry is `x̂ᵢ = z̃ᵢ + b`.

use crate::measurement::MeasurementSpec;
use crate::omp::{
    omp, omp_traced, omp_with_op_traced, OmpConfig, OmpDictionary, OmpResult, StopReason,
};
use crate::ops::{MeasurementOp, MeasurementOperator};
use crate::sparse::SparseVector;
use cso_linalg::{vector, ColMatrix, LinalgError, Vector};
use cso_obs::{Recorder, Value};

/// Recovered outlier: a key index and its recovered aggregate value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveredOutlier {
    /// Position in the global key dictionary.
    pub index: usize,
    /// Recovered value `x̂ᵢ = zᵢ + b`.
    pub value: f64,
    /// Deviation from the recovered mode, `x̂ᵢ − b`.
    pub deviation: f64,
}

/// Output of a BOMP run.
#[derive(Debug, Clone)]
pub struct BompResult {
    /// Recovered mode `b = z₀/√N` (0 when the bias column was never
    /// selected — the sparse-at-zero case).
    pub mode: f64,
    /// Whether the bias column entered the support at all.
    pub bias_selected: bool,
    /// All recovered outliers (up to `R − 1`), sorted by decreasing
    /// `|deviation|`, ties broken by index.
    pub outliers: Vec<RecoveredOutlier>,
    /// Recovered deviation vector `z` (sparse, dimension `N`).
    pub deviations: SparseVector,
    /// Number of OMP iterations executed.
    pub iterations: usize,
    /// Why the inner OMP stopped.
    pub stop: StopReason,
    /// Mode estimate after each iteration (`z₀/√N`, or 0 before the bias
    /// column is selected). Empty unless mode tracking was enabled. This is
    /// the series plotted in the paper's Figures 4(b) and 9.
    pub mode_trace: Vec<f64>,
    /// Residual norm after each iteration.
    pub residual_trace: Vec<f64>,
}

impl BompResult {
    /// The `k` outliers furthest from the mode, as the paper's final
    /// selection step. Fewer are returned when recovery found fewer.
    pub fn top_k(&self, k: usize) -> &[RecoveredOutlier] {
        &self.outliers[..k.min(self.outliers.len())]
    }

    /// Reassembles the recovered dense vector `x̂ = b·1 + z`.
    pub fn recovered_dense(&self) -> Vector {
        let mut x = vec![self.mode; self.deviations.dim()];
        for &(i, z) in self.deviations.entries() {
            x[i] += z;
        }
        Vector::from_vec(x)
    }
}

/// Configuration for [`bomp`] / [`bomp_with_matrix`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct BompConfig {
    /// Inner OMP configuration. `max_iterations` is the paper's `R = f(k)`.
    pub omp: OmpConfig,
    /// Record the mode estimate after every iteration (Figures 4(b)/9).
    pub track_mode: bool,
}

impl BompConfig {
    /// The paper's iteration heuristic `R = f(k) ∈ [2k, 5k]` (Section 5).
    /// We default to the midpoint `3k + 1` (the `+ 1` pays for the bias
    /// column, which occupies one support slot).
    pub fn for_k_outliers(k: usize) -> Self {
        BompConfig { omp: OmpConfig::with_max_iterations(3 * k + 1), ..BompConfig::default() }
    }

    /// Iteration budget `r` with defaults elsewhere.
    pub fn with_max_iterations(r: usize) -> Self {
        BompConfig { omp: OmpConfig::with_max_iterations(r), ..BompConfig::default() }
    }
}

/// Runs BOMP from a measurement spec, materializing the dictionary.
///
/// This is the aggregator-side entry point matching the paper's CS-Reducer:
/// regenerate `Φ0` from the shared seed, extend it with the bias column,
/// recover.
pub fn bomp(
    spec: &MeasurementSpec,
    y: &Vector,
    config: &BompConfig,
) -> Result<BompResult, LinalgError> {
    bomp_traced(spec, y, config, &Recorder::disabled())
}

/// As [`bomp`], recording the recovery trace into `rec` (see
/// [`bomp_with_matrix_traced`]).
pub fn bomp_traced(
    spec: &MeasurementSpec,
    y: &Vector,
    config: &BompConfig,
    rec: &Recorder,
) -> Result<BompResult, LinalgError> {
    let phi0 = spec.materialize();
    bomp_with_matrix_traced(&phi0, y, config, rec)
}

/// Runs BOMP against an already-materialized `Φ0` (`M × N`).
pub fn bomp_with_matrix(
    phi0: &ColMatrix,
    y: &Vector,
    config: &BompConfig,
) -> Result<BompResult, LinalgError> {
    bomp_with_matrix_traced(phi0, y, config, &Recorder::disabled())
}

/// As [`bomp_with_matrix`], recording a `recover.bomp` span into `rec`.
///
/// Per iteration one `bomp.iter` event carries the selected atom in signal
/// space (`atom = -1, bias = true` for the bias column), the residual norm,
/// and the running mode estimate `z₀/√N` — the per-iteration signals of the
/// paper's Figures 4(b) and 9. A final `bomp.done` event records mode,
/// bias selection, iteration count and the stop reason. When the recorder
/// is enabled, per-iteration coefficient tracking is switched on so the
/// mode series can be computed (one `O(k²)` solve per iteration — the cost
/// of watching); a disabled recorder changes nothing.
pub fn bomp_with_matrix_traced(
    phi0: &ColMatrix,
    y: &Vector,
    config: &BompConfig,
    rec: &Recorder,
) -> Result<BompResult, LinalgError> {
    let n = phi0.cols();
    let m = phi0.rows();
    if n == 0 || m == 0 {
        return Err(LinalgError::Empty { op: "bomp" });
    }
    if y.len() != m {
        return Err(LinalgError::DimensionMismatch {
            op: "bomp",
            expected: (m, 1),
            actual: (y.len(), 1),
        });
    }

    // Φ̃ = [φ0, Φ0] with φ0 = (1/√N)·Σ φᵢ  (paper equation (3)).
    let mut extended = ColMatrix::zeros(m, n + 1);
    let inv_sqrt_n = 1.0 / (n as f64).sqrt();
    {
        let sum = phi0.column_sum();
        let c0 = extended.col_mut(0);
        for (o, s) in c0.iter_mut().zip(sum.iter()) {
            *o = s * inv_sqrt_n;
        }
    }
    for j in 0..n {
        extended.col_mut(j + 1).copy_from_slice(phi0.col(j));
    }

    let mut omp_cfg = config.omp;
    if config.track_mode || rec.is_enabled() {
        omp_cfg.track_coefficients = true;
    }
    let _span = rec.span_with(
        "recover.bomp",
        &[("rows", Value::U64(m as u64)), ("cols", Value::U64(n as u64))],
    );
    let inner: OmpResult = omp_traced(&extended, y, &omp_cfg, rec)?;
    assemble(n, inner, config.track_mode, rec)
}

/// The bias-extended dictionary `Φ̃ = [φ0, Φ]` over a measurement operator:
/// atom 0 is the (precomputed) bias column, atoms `1..=N` are the
/// operator's columns. Nothing beyond the `M`-length bias is materialized —
/// the correlation scan is one `apply_transpose_into` plus one dot.
struct BiasedOpDictionary<'a> {
    op: &'a MeasurementOperator,
    bias: Vec<f64>,
}

impl OmpDictionary for BiasedOpDictionary<'_> {
    fn rows(&self) -> usize {
        self.op.m()
    }

    fn cols(&self) -> usize {
        self.op.n() + 1
    }

    fn column_into(&self, j: usize, out: &mut [f64]) {
        if j == 0 {
            out.copy_from_slice(&self.bias);
        } else {
            MeasurementOp::column_into(self.op, j - 1, out);
        }
    }

    fn correlations_into(&self, x: &[f64], out: &mut [f64]) -> Result<(), LinalgError> {
        let (head, tail) = out.split_at_mut(1);
        head[0] = vector::dot(&self.bias, x);
        self.op.apply_transpose_into(x, tail)
    }
}

/// Runs BOMP against a measurement operator without materializing the
/// dictionary — the matrix-free counterpart of [`bomp_with_matrix`]. Per
/// OMP iteration the correlation refresh costs one operator transpose pass
/// (`O(N log N)` for SRHT, `O(N·s)` for seeded-sparse) instead of the
/// dense `O(M·N)` gemv, and peak memory stays `O(M + N)`.
pub fn bomp_with_op(
    op: &MeasurementOperator,
    y: &Vector,
    config: &BompConfig,
) -> Result<BompResult, LinalgError> {
    bomp_with_op_traced(op, y, config, &Recorder::disabled())
}

/// As [`bomp_with_op`], recording the same `recover.bomp` span and events
/// as [`bomp_with_matrix_traced`] (plus a `backend` attribute).
pub fn bomp_with_op_traced(
    op: &MeasurementOperator,
    y: &Vector,
    config: &BompConfig,
    rec: &Recorder,
) -> Result<BompResult, LinalgError> {
    let n = op.n();
    let m = op.m();
    if y.len() != m {
        return Err(LinalgError::DimensionMismatch {
            op: "bomp",
            expected: (m, 1),
            actual: (y.len(), 1),
        });
    }
    let dict = BiasedOpDictionary { op, bias: op.bias_column() };
    let mut omp_cfg = config.omp;
    if config.track_mode || rec.is_enabled() {
        omp_cfg.track_coefficients = true;
    }
    let _span = rec.span_with(
        "recover.bomp",
        &[
            ("rows", Value::U64(m as u64)),
            ("cols", Value::U64(n as u64)),
            ("backend", Value::from(op.kind().label())),
        ],
    );
    let inner: OmpResult = omp_with_op_traced(&dict, y, &omp_cfg, rec)?;
    assemble(n, inner, config.track_mode, rec)
}

/// Recovery with a *known* mode — the baseline BOMP is compared against in
/// Figure 4(a).
///
/// When the bias `b` is known in advance, `x = b·1 + z` gives
/// `y − b·Φ0·1 = Φ0·z` with `z` sparse at zero, so plain OMP applies
/// directly (no extended column). The paper notes this baseline must spend
/// an extra `2s + 1` transmitted values to learn `b`, which BOMP avoids.
pub fn omp_with_known_mode(
    phi0: &ColMatrix,
    y: &Vector,
    mode: f64,
    config: &BompConfig,
) -> Result<BompResult, LinalgError> {
    let n = phi0.cols();
    let m = phi0.rows();
    if n == 0 || m == 0 {
        return Err(LinalgError::Empty { op: "omp_with_known_mode" });
    }
    if y.len() != m {
        return Err(LinalgError::DimensionMismatch {
            op: "omp_with_known_mode",
            expected: (m, 1),
            actual: (y.len(), 1),
        });
    }
    // y' = y − b·Φ0·1.
    let ones = Vector::filled(n, mode);
    let bias_part = phi0.matvec(&ones)?;
    let y_prime = y.sub(&bias_part)?;

    let mut omp_cfg = config.omp;
    omp_cfg.track_coefficients = false;
    let inner = omp(phi0, &y_prime, &omp_cfg)?;

    let deviations = inner.to_sparse(n)?;
    let mut outliers: Vec<RecoveredOutlier> = deviations
        .entries()
        .iter()
        .map(|&(i, z)| RecoveredOutlier { index: i, value: z + mode, deviation: z })
        .collect();
    outliers.sort_by(|a, b| {
        b.deviation
            .abs()
            .partial_cmp(&a.deviation.abs())
            .expect("finite deviations")
            .then(a.index.cmp(&b.index))
    });
    let residual_trace = inner.trace.iter().map(|t| t.residual_norm).collect();
    Ok(BompResult {
        mode,
        bias_selected: false,
        outliers,
        deviations,
        iterations: inner.trace.len(),
        stop: inner.stop,
        mode_trace: Vec::new(),
        residual_trace,
    })
}

/// Converts the extended-dictionary OMP result back into signal space
/// (paper equation (4)).
fn assemble(
    n: usize,
    inner: OmpResult,
    track_mode: bool,
    rec: &Recorder,
) -> Result<BompResult, LinalgError> {
    let inv_sqrt_n = 1.0 / (n as f64).sqrt();

    let mut mode = 0.0;
    let mut bias_selected = false;
    let mut deviation_entries: Vec<(usize, f64)> = Vec::with_capacity(inner.support.len());
    for (&col, &coef) in inner.support.iter().zip(inner.coefficients.iter()) {
        if col == 0 {
            bias_selected = true;
            mode = coef * inv_sqrt_n; // b = z₀/√N
        } else {
            deviation_entries.push((col - 1, coef));
        }
    }
    let deviations = SparseVector::new(n, deviation_entries)?;

    let mut outliers: Vec<RecoveredOutlier> = deviations
        .entries()
        .iter()
        .map(|&(i, z)| RecoveredOutlier { index: i, value: z + mode, deviation: z })
        .collect();
    outliers.sort_by(|a, b| {
        b.deviation
            .abs()
            .partial_cmp(&a.deviation.abs())
            .expect("finite deviations")
            .then(a.index.cmp(&b.index))
    });

    // Per-iteration mode estimate z₀/√N. Available whenever the inner OMP
    // tracked coefficients (track_mode, or an enabled recorder).
    let mode_series: Vec<f64> = if inner.trace.iter().all(|t| t.coefficients.is_some()) {
        inner
            .trace
            .iter()
            .map(|t| {
                let coeffs = t.coefficients.as_ref().expect("tracked");
                // Position of the bias column within the support-so-far.
                inner.support[..coeffs.len()]
                    .iter()
                    .position(|&c| c == 0)
                    .map(|p| coeffs[p] * inv_sqrt_n)
                    .unwrap_or(0.0)
            })
            .collect()
    } else {
        Vec::new()
    };

    if rec.is_enabled() {
        for (i, step) in inner.trace.iter().enumerate() {
            // Extended column 0 is the bias atom; columns 1.. map to signal
            // keys 0.. — report signal-space indices, with −1 for the bias.
            let bias = step.selected == 0;
            let atom = if bias { -1i64 } else { (step.selected - 1) as i64 };
            rec.event(
                "bomp.iter",
                &[
                    ("iter", Value::U64(i as u64)),
                    ("atom", Value::I64(atom)),
                    ("bias", Value::Bool(bias)),
                    ("residual", Value::F64(step.residual_norm)),
                    ("mode", Value::F64(mode_series.get(i).copied().unwrap_or(0.0))),
                ],
            );
        }
        rec.event(
            "bomp.done",
            &[
                ("mode", Value::F64(mode)),
                ("bias_selected", Value::Bool(bias_selected)),
                ("iterations", Value::U64(inner.trace.len() as u64)),
                ("stop", Value::from(inner.stop.as_str())),
            ],
        );
    }

    let mode_trace = if track_mode { mode_series } else { Vec::new() };
    let residual_trace = inner.trace.iter().map(|t| t.residual_norm).collect();

    Ok(BompResult {
        mode,
        bias_selected,
        outliers,
        deviations,
        iterations: inner.trace.len(),
        stop: inner.stop,
        mode_trace,
        residual_trace,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Majority-dominated instance: all keys at `b` except the given ones.
    fn biased_instance(
        m: usize,
        n: usize,
        b: f64,
        outliers: &[(usize, f64)],
        seed: u64,
    ) -> (MeasurementSpec, Vector, Vec<f64>) {
        let spec = MeasurementSpec::new(m, n, seed).unwrap();
        let mut x = vec![b; n];
        for &(i, v) in outliers {
            x[i] = v;
        }
        let y = spec.measure_dense(&x).unwrap();
        (spec, y, x)
    }

    #[test]
    fn recovers_mode_and_outliers_exactly() {
        let (spec, y, _x) =
            biased_instance(60, 200, 5000.0, &[(10, 9000.0), (50, 100.0), (120, 7000.0)], 2024);
        let r = bomp(&spec, &y, &BompConfig::default()).unwrap();
        assert!(r.bias_selected);
        assert!((r.mode - 5000.0).abs() < 1e-6, "mode = {}", r.mode);
        let top = r.top_k(3);
        let mut idx: Vec<usize> = top.iter().map(|o| o.index).collect();
        idx.sort_unstable();
        assert_eq!(idx, vec![10, 50, 120]);
        for o in top {
            let expect = match o.index {
                10 => 9000.0,
                50 => 100.0,
                120 => 7000.0,
                _ => unreachable!(),
            };
            assert!((o.value - expect).abs() < 1e-5, "value {} for key {}", o.value, o.index);
        }
    }

    #[test]
    fn outliers_sorted_by_absolute_deviation() {
        let (spec, y, _) =
            biased_instance(60, 150, 1000.0, &[(5, 1100.0), (9, 5000.0), (80, -2000.0)], 7);
        let r = bomp(&spec, &y, &BompConfig::default()).unwrap();
        // |dev|: key 9 → 4000, key 80 → 3000, key 5 → 100.
        let order: Vec<usize> = r.outliers.iter().map(|o| o.index).collect();
        assert_eq!(order, vec![9, 80, 5]);
        // top_k truncates.
        assert_eq!(r.top_k(2).len(), 2);
        assert_eq!(r.top_k(10).len(), 3);
    }

    #[test]
    fn zero_mode_data_behaves_like_plain_omp() {
        // Sparse-at-zero data: BOMP should still recover, with mode ≈ 0.
        let (spec, y, _) = biased_instance(50, 120, 0.0, &[(3, 42.0), (100, -17.0)], 99);
        let r = bomp(&spec, &y, &BompConfig::default()).unwrap();
        assert!(r.mode.abs() < 1e-6, "mode = {}", r.mode);
        let mut idx: Vec<usize> = r.outliers.iter().map(|o| o.index).collect();
        idx.sort_unstable();
        // The bias column may or may not enter; the true outliers must.
        assert!(idx.contains(&3) && idx.contains(&100));
    }

    #[test]
    fn recovered_dense_matches_ground_truth() {
        let (spec, y, x) = biased_instance(80, 100, 1800.0, &[(4, 0.0), (90, 3600.0)], 5);
        let r = bomp(&spec, &y, &BompConfig::default()).unwrap();
        let rec = r.recovered_dense();
        for (i, (&xi, &ri)) in x.iter().zip(rec.iter()).enumerate() {
            assert!((xi - ri).abs() < 1e-5, "key {i}: {xi} vs {ri}");
        }
    }

    #[test]
    fn mode_trace_stabilizes_after_support_found() {
        let (spec, y, _) = biased_instance(
            80,
            200,
            5000.0,
            &[(1, 0.0), (2, 10000.0), (3, -3000.0), (4, 20000.0)],
            31,
        );
        let cfg = BompConfig { track_mode: true, ..BompConfig::default() };
        let r = bomp(&spec, &y, &cfg).unwrap();
        assert_eq!(r.mode_trace.len(), r.iterations);
        let last = *r.mode_trace.last().unwrap();
        assert!((last - 5000.0).abs() < 1e-5);
        assert!((last - r.mode).abs() < 1e-9, "trace end must equal final mode");
    }

    #[test]
    fn iteration_budget_limits_outliers() {
        let outliers: Vec<(usize, f64)> = (0..20).map(|i| (i * 7, 9000.0 + i as f64)).collect();
        let (spec, y, _) = biased_instance(100, 300, 100.0, &outliers, 13);
        let r = bomp(&spec, &y, &BompConfig::with_max_iterations(5)).unwrap();
        assert!(r.iterations <= 5);
        assert!(r.outliers.len() <= 5, "at most R−1 outliers plus bias");
    }

    #[test]
    fn for_k_outliers_budget_in_paper_range() {
        for k in [5usize, 10, 20] {
            let cfg = BompConfig::for_k_outliers(k);
            let r = cfg.omp.max_iterations;
            assert!(r >= 2 * k && r <= 5 * k, "R = {r} for k = {k}");
        }
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let spec = MeasurementSpec::new(10, 20, 1).unwrap();
        let y = Vector::zeros(11);
        assert!(bomp(&spec, &y, &BompConfig::default()).is_err());
    }

    #[test]
    fn known_mode_omp_matches_bomp_on_exact_instances() {
        let (spec, y, _) =
            biased_instance(60, 200, 5000.0, &[(10, 9000.0), (50, 100.0), (120, 7000.0)], 2024);
        let phi0 = spec.materialize();
        let r = omp_with_known_mode(&phi0, &y, 5000.0, &BompConfig::default()).unwrap();
        assert_eq!(r.mode, 5000.0);
        assert!(!r.bias_selected);
        let mut idx: Vec<usize> = r.outliers.iter().map(|o| o.index).collect();
        idx.sort_unstable();
        assert_eq!(idx, vec![10, 50, 120]);
        for o in &r.outliers {
            let expect = match o.index {
                10 => 9000.0,
                50 => 100.0,
                120 => 7000.0,
                _ => unreachable!(),
            };
            assert!((o.value - expect).abs() < 1e-5);
        }
    }

    #[test]
    fn known_mode_omp_with_wrong_mode_degrades() {
        // Feeding a wrong bias makes the implied z dense, so exact recovery
        // at this M must fail — quantifying the value of knowing b.
        let (spec, y, _) = biased_instance(40, 200, 5000.0, &[(10, 9000.0)], 9);
        let phi0 = spec.materialize();
        let r = omp_with_known_mode(&phi0, &y, 0.0, &BompConfig::default()).unwrap();
        assert!(
            r.residual_trace.last().copied().unwrap_or(f64::INFINITY) > 1.0 || r.outliers.len() > 5
        );
    }

    #[test]
    fn known_mode_omp_checks_dimensions() {
        let spec = MeasurementSpec::new(10, 20, 1).unwrap();
        let phi0 = spec.materialize();
        assert!(omp_with_known_mode(&phi0, &Vector::zeros(9), 0.0, &BompConfig::default()).is_err());
    }

    #[test]
    fn op_path_recovers_mode_and_outliers_on_every_backend() {
        let (m, n, seed) = (60, 200, 2024);
        let ops = [
            MeasurementOperator::dense(m, n, seed).unwrap(),
            MeasurementOperator::srht(m, n, seed).unwrap(),
            MeasurementOperator::seeded_sparse(m, n, seed, 12).unwrap(),
        ];
        let mut x = vec![5000.0; n];
        x[10] = 9000.0;
        x[50] = 100.0;
        x[120] = 7000.0;
        for op in &ops {
            let y = op.apply(&x).unwrap();
            let r = bomp_with_op(op, &y, &BompConfig::default()).unwrap();
            assert!(r.bias_selected, "{:?}", op.kind());
            assert!((r.mode - 5000.0).abs() < 1e-5, "{:?}: mode = {}", op.kind(), r.mode);
            let mut idx: Vec<usize> = r.top_k(3).iter().map(|o| o.index).collect();
            idx.sort_unstable();
            assert_eq!(idx, vec![10, 50, 120], "{:?}", op.kind());
        }
    }

    #[test]
    fn op_path_on_dense_backend_matches_matrix_path() {
        let (spec, y, _) =
            biased_instance(60, 200, 5000.0, &[(10, 9000.0), (50, 100.0), (120, 7000.0)], 2024);
        let via_matrix = bomp(&spec, &y, &BompConfig::default()).unwrap();
        let op = MeasurementOperator::Dense(spec);
        let via_op = bomp_with_op(&op, &y, &BompConfig::default()).unwrap();
        assert_eq!(via_op.bias_selected, via_matrix.bias_selected);
        assert_eq!(via_op.mode.to_bits(), via_matrix.mode.to_bits());
        assert_eq!(via_op.iterations, via_matrix.iterations);
        let a: Vec<usize> = via_op.outliers.iter().map(|o| o.index).collect();
        let b: Vec<usize> = via_matrix.outliers.iter().map(|o| o.index).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn op_path_checks_dimensions() {
        let op = MeasurementOperator::srht(10, 20, 1).unwrap();
        assert!(bomp_with_op(&op, &Vector::zeros(9), &BompConfig::default()).is_err());
    }

    #[test]
    fn negative_values_handled() {
        // Outlier values may be negative (the paper stresses x ∈ R^N).
        let (spec, y, _) = biased_instance(60, 120, -500.0, &[(7, -9000.0), (8, 400.0)], 55);
        let r = bomp(&spec, &y, &BompConfig::default()).unwrap();
        assert!((r.mode + 500.0).abs() < 1e-6);
        let top: Vec<usize> = r.top_k(2).iter().map(|o| o.index).collect();
        assert!(top.contains(&7) && top.contains(&8));
    }
}
