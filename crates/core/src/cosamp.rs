//! CoSaMP — Compressive Sampling Matching Pursuit (Needell & Tropp).
//!
//! A third recovery algorithm beyond the paper's OMP and BP, included to
//! widen the recovery ablation: CoSaMP selects `2s` candidate columns per
//! iteration, solves least squares over the merged support, and prunes back
//! to the `s` largest coefficients — trading OMP's one-column-at-a-time
//! greed for batch corrections with provable RIP-based guarantees.

use crate::sparse::SparseVector;
use cso_linalg::{ColMatrix, IncrementalQr, LinalgError, Vector};

/// Tuning knobs for [`cosamp`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CosampConfig {
    /// Target sparsity `s` (the pruned support size).
    pub sparsity: usize,
    /// Maximum outer iterations.
    pub max_iterations: usize,
    /// Stop when `‖r‖₂ ≤ tolerance · ‖y‖₂`.
    pub tolerance: f64,
}

impl CosampConfig {
    /// Config for target sparsity `s` with standard defaults.
    pub fn for_sparsity(s: usize) -> Self {
        CosampConfig { sparsity: s, max_iterations: 50, tolerance: 1e-9 }
    }
}

/// Output of a CoSaMP run.
#[derive(Debug, Clone)]
pub struct CosampResult {
    /// Recovered sparse vector (at most `s` non-zeros).
    pub x: SparseVector,
    /// Final residual norm.
    pub residual_norm: f64,
    /// Outer iterations executed.
    pub iterations: usize,
    /// True when the tolerance was met before the budget ran out.
    pub converged: bool,
}

/// Runs CoSaMP against a materialized dictionary.
pub fn cosamp(
    dictionary: &ColMatrix,
    y: &Vector,
    config: &CosampConfig,
) -> Result<CosampResult, LinalgError> {
    let m = dictionary.rows();
    let d = dictionary.cols();
    if y.len() != m {
        return Err(LinalgError::DimensionMismatch {
            op: "cosamp",
            expected: (m, 1),
            actual: (y.len(), 1),
        });
    }
    if config.sparsity == 0 || config.sparsity > d {
        return Err(LinalgError::InvalidParameter {
            name: "sparsity",
            message: "need 1 <= s <= dictionary columns".into(),
        });
    }
    let s = config.sparsity;
    let y_norm = y.norm2();
    let abs_tol = config.tolerance * y_norm;

    let mut support: Vec<usize> = Vec::new();
    let mut coeffs: Vec<f64> = Vec::new();
    let mut residual = y.clone();
    let mut iterations = 0;
    let mut converged = residual.norm2() <= abs_tol;

    while !converged && iterations < config.max_iterations {
        iterations += 1;
        // Proxy: correlations of the residual with every column.
        let proxy = dictionary.matvec_transpose(&residual)?;
        let mut order: Vec<usize> = (0..d).collect();
        order.sort_by(|&a, &b| {
            proxy[b].abs().partial_cmp(&proxy[a].abs()).expect("finite").then(a.cmp(&b))
        });
        // Merge the 2s strongest candidates with the current support.
        let mut merged: Vec<usize> = support.clone();
        for &j in order.iter().take(2 * s) {
            if !merged.contains(&j) {
                merged.push(j);
            }
        }
        merged.sort_unstable();

        // Least squares over the merged support (skipping dependent columns).
        let mut qr = IncrementalQr::new(m);
        let mut kept: Vec<usize> = Vec::with_capacity(merged.len());
        for &j in &merged {
            if qr.push_column(dictionary.col(j)).is_ok() {
                kept.push(j);
            }
        }
        let b = qr.solve_least_squares(y.as_slice())?;

        // Prune to the s largest coefficients.
        let mut ranked: Vec<(usize, f64)> = kept.iter().copied().zip(b.iter().copied()).collect();
        ranked
            .sort_by(|a, b| b.1.abs().partial_cmp(&a.1.abs()).expect("finite").then(a.0.cmp(&b.0)));
        ranked.truncate(s);
        ranked.sort_by_key(|&(j, _)| j);
        support = ranked.iter().map(|&(j, _)| j).collect();

        // Re-fit on the pruned support for an exact residual.
        let mut qr2 = IncrementalQr::new(m);
        for &j in &support {
            // Columns independent by construction (subset of `kept`).
            qr2.push_column(dictionary.col(j))?;
        }
        let b2 = qr2.solve_least_squares(y.as_slice())?;
        coeffs = b2.into_vec();
        residual = qr2.residual(y.as_slice())?;
        converged = residual.norm2() <= abs_tol;
    }

    let x = SparseVector::new(d, support.iter().copied().zip(coeffs.iter().copied()).collect())?;
    Ok(CosampResult { x, residual_norm: residual.norm2(), iterations, converged })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measurement::MeasurementSpec;

    fn instance(
        m: usize,
        n: usize,
        support: &[(usize, f64)],
        seed: u64,
    ) -> (ColMatrix, Vector, SparseVector) {
        let spec = MeasurementSpec::new(m, n, seed).unwrap();
        let phi = spec.materialize();
        let truth = SparseVector::new(n, support.to_vec()).unwrap();
        let y = phi.matvec(&truth.to_dense()).unwrap();
        (phi, y, truth)
    }

    #[test]
    fn recovers_exactly_sparse_signal() {
        let (phi, y, truth) = instance(60, 150, &[(3, 9.0), (70, -4.0), (149, 2.0)], 5);
        let r = cosamp(&phi, &y, &CosampConfig::for_sparsity(3)).unwrap();
        assert!(r.converged, "{} iterations, residual {}", r.iterations, r.residual_norm);
        assert!(r.x.l2_distance(&truth).unwrap() < 1e-7);
    }

    #[test]
    fn agrees_with_omp_on_easy_instances() {
        let (phi, y, _) = instance(80, 200, &[(10, 100.0), (20, -50.0), (30, 25.0)], 9);
        let co = cosamp(&phi, &y, &CosampConfig::for_sparsity(3)).unwrap();
        let om = crate::omp::omp(&phi, &y, &crate::omp::OmpConfig::default()).unwrap();
        let mut co_sup: Vec<usize> = co.x.entries().iter().map(|&(j, _)| j).collect();
        let mut om_sup = om.support.clone();
        co_sup.sort_unstable();
        om_sup.sort_unstable();
        assert_eq!(co_sup, om_sup);
    }

    #[test]
    fn respects_sparsity_budget() {
        let (phi, y, _) =
            instance(50, 100, &[(1, 5.0), (2, 5.0), (3, 5.0), (4, 5.0), (5, 5.0)], 11);
        let r = cosamp(&phi, &y, &CosampConfig::for_sparsity(2)).unwrap();
        assert!(r.x.nnz() <= 2);
    }

    #[test]
    fn zero_measurement_is_trivial() {
        let (phi, _, _) = instance(20, 40, &[(0, 1.0)], 3);
        let r = cosamp(&phi, &Vector::zeros(20), &CosampConfig::for_sparsity(2)).unwrap();
        assert!(r.converged);
        assert_eq!(r.iterations, 0);
        assert_eq!(r.x.nnz(), 0);
    }

    #[test]
    fn rejects_bad_parameters() {
        let (phi, y, _) = instance(20, 40, &[(0, 1.0)], 3);
        assert!(cosamp(&phi, &y, &CosampConfig::for_sparsity(0)).is_err());
        assert!(cosamp(&phi, &y, &CosampConfig::for_sparsity(41)).is_err());
        assert!(cosamp(&phi, &Vector::zeros(19), &CosampConfig::for_sparsity(2)).is_err());
    }

    #[test]
    fn iteration_budget_respected() {
        let (phi, y, _) = instance(16, 200, &[(7, 3.0)], 17);
        let cfg = CosampConfig { sparsity: 8, max_iterations: 2, tolerance: 0.0 };
        let r = cosamp(&phi, &y, &cfg).unwrap();
        assert!(r.iterations <= 2);
        assert!(!r.converged);
    }
}
