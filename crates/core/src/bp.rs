//! Basis Pursuit via ADMM.
//!
//! The paper's Section 2.2 discusses Basis Pursuit (`min ‖x‖₁ s.t. Φx = y`)
//! as the main alternative to OMP and argues OMP is preferable for the
//! outlier problem (simpler, faster, naturally greedy on the significant
//! components). We implement BP anyway so that claim can be checked — the
//! `ablation_bp` bench compares both solvers on identical instances.
//!
//! The solver is the standard ADMM splitting (Boyd et al.):
//!
//! ```text
//! x⁺ = Π_{Φx=y}(z − u)          (projection onto the affine constraint)
//! z⁺ = Sτ(x⁺ + u)               (soft-thresholding, τ = 1/ρ)
//! u⁺ = u + x⁺ − z⁺
//! ```
//!
//! The projection is `v − Φᵀ(ΦΦᵀ)⁻¹(Φv − y)`; `ΦΦᵀ` is factored once by
//! Cholesky and reused across iterations.

use cso_linalg::{Cholesky, ColMatrix, LinalgError, Vector};

/// Tuning knobs for [`basis_pursuit`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BpConfig {
    /// Augmented-Lagrangian weight ρ (> 0).
    pub rho: f64,
    /// Maximum ADMM iterations.
    pub max_iterations: usize,
    /// Stop when both primal (`‖x − z‖₂`) and dual (`ρ‖z − z_prev‖₂`)
    /// residuals fall below this tolerance.
    pub tolerance: f64,
}

impl Default for BpConfig {
    fn default() -> Self {
        BpConfig { rho: 1.0, max_iterations: 2000, tolerance: 1e-7 }
    }
}

/// Output of a basis-pursuit run.
#[derive(Debug, Clone)]
pub struct BpResult {
    /// Recovered vector (dense, length `N`).
    pub x: Vector,
    /// Iterations executed.
    pub iterations: usize,
    /// Final primal residual `‖x − z‖₂`.
    pub primal_residual: f64,
    /// True when both residuals met the tolerance before the budget ran out.
    pub converged: bool,
}

/// Solves `min ‖x‖₁ subject to Φ·x = y`.
///
/// Requires `M ≤ N` with full row rank (`ΦΦᵀ` invertible) — always true in
/// practice for Gaussian measurement matrices with `M < N`.
pub fn basis_pursuit(
    phi: &ColMatrix,
    y: &Vector,
    config: &BpConfig,
) -> Result<BpResult, LinalgError> {
    if y.len() != phi.rows() {
        return Err(LinalgError::DimensionMismatch {
            op: "basis_pursuit",
            expected: (phi.rows(), 1),
            actual: (y.len(), 1),
        });
    }
    if config.rho <= 0.0 {
        return Err(LinalgError::InvalidParameter {
            name: "rho",
            message: "must be positive".into(),
        });
    }
    let n = phi.cols();
    // Scale invariance: ADMM's soft-threshold step size is absolute, so
    // solve against ŷ = y/‖y‖₂ and rescale the solution afterwards —
    // convergence behaviour is then independent of the data's magnitude.
    let y_scale = y.norm2();
    if y_scale == 0.0 {
        return Ok(BpResult {
            x: Vector::zeros(n),
            iterations: 0,
            primal_residual: 0.0,
            converged: true,
        });
    }
    let mut y_hat = y.clone();
    y_hat.scale(1.0 / y_scale);
    let y = &y_hat;

    // Gram of the transpose: ΦΦᵀ, an M×M SPD matrix.
    let ppt = phi.transpose().gram();
    let chol = Cholesky::factor(&ppt)?;

    let project = |v: &Vector| -> Result<Vector, LinalgError> {
        let pv = phi.matvec(v)?;
        let defect = pv.sub(y)?;
        let w = chol.solve(&defect)?;
        let corr = phi.matvec_transpose(&w)?;
        v.sub(&corr)
    };

    let tau = 1.0 / config.rho;
    let mut z = Vector::zeros(n);
    let mut u = Vector::zeros(n);
    let mut iterations = 0;
    let mut primal = f64::INFINITY;
    let mut converged = false;
    let mut x = Vector::zeros(n);

    while iterations < config.max_iterations {
        iterations += 1;
        let v = z.sub(&u)?;
        x = project(&v)?;
        let z_prev = z.clone();
        let xu = x.add(&u)?;
        z = Vector::from_vec(xu.iter().map(|&w| soft_threshold(w, tau)).collect());
        u = u.add(&x.sub(&z)?)?;
        primal = x.sub(&z)?.norm2();
        let dual = config.rho * z.sub(&z_prev)?.norm2();
        if primal <= config.tolerance && dual <= config.tolerance {
            converged = true;
            break;
        }
    }
    // Undo the normalization.
    x.scale(y_scale);
    Ok(BpResult { x, iterations, primal_residual: primal * y_scale, converged })
}

#[inline]
fn soft_threshold(v: f64, tau: f64) -> f64 {
    if v > tau {
        v - tau
    } else if v < -tau {
        v + tau
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measurement::MeasurementSpec;
    use crate::sparse::SparseVector;

    #[test]
    fn soft_threshold_shrinks_toward_zero() {
        assert_eq!(soft_threshold(3.0, 1.0), 2.0);
        assert_eq!(soft_threshold(-3.0, 1.0), -2.0);
        assert_eq!(soft_threshold(0.5, 1.0), 0.0);
        assert_eq!(soft_threshold(-0.5, 1.0), 0.0);
    }

    #[test]
    fn recovers_sparse_signal() {
        let spec = MeasurementSpec::new(40, 100, 77).unwrap();
        let phi = spec.materialize();
        let truth = SparseVector::new(100, vec![(5, 8.0), (50, -3.0), (90, 12.0)]).unwrap();
        let y = phi.matvec(&truth.to_dense()).unwrap();
        let r = basis_pursuit(&phi, &y, &BpConfig::default()).unwrap();
        assert!(r.converged, "BP should converge ({} iters)", r.iterations);
        let err = r.x.sub(&truth.to_dense()).unwrap().norm2();
        assert!(err < 1e-3, "recovery error = {err}");
    }

    #[test]
    fn solution_satisfies_constraint() {
        let spec = MeasurementSpec::new(20, 60, 3).unwrap();
        let phi = spec.materialize();
        let truth = SparseVector::new(60, vec![(10, 4.0), (30, -7.0)]).unwrap();
        let y = phi.matvec(&truth.to_dense()).unwrap();
        let r = basis_pursuit(&phi, &y, &BpConfig::default()).unwrap();
        let defect = phi.matvec(&r.x).unwrap().sub(&y).unwrap().norm2();
        assert!(defect < 1e-4, "‖Φx − y‖ = {defect}");
    }

    #[test]
    fn zero_measurement_gives_zero_solution() {
        let spec = MeasurementSpec::new(10, 30, 9).unwrap();
        let phi = spec.materialize();
        let r = basis_pursuit(&phi, &Vector::zeros(10), &BpConfig::default()).unwrap();
        assert!(r.x.norm2() < 1e-9);
        assert!(r.converged);
    }

    #[test]
    fn rejects_bad_parameters() {
        let spec = MeasurementSpec::new(10, 30, 9).unwrap();
        let phi = spec.materialize();
        let bad = BpConfig { rho: 0.0, ..BpConfig::default() };
        assert!(basis_pursuit(&phi, &Vector::zeros(10), &bad).is_err());
        assert!(basis_pursuit(&phi, &Vector::zeros(9), &BpConfig::default()).is_err());
    }

    #[test]
    fn iteration_budget_respected() {
        let spec = MeasurementSpec::new(30, 80, 21).unwrap();
        let phi = spec.materialize();
        let truth = SparseVector::new(80, vec![(1, 5.0), (2, -5.0)]).unwrap();
        let y = phi.matvec(&truth.to_dense()).unwrap();
        let cfg = BpConfig { max_iterations: 3, ..BpConfig::default() };
        let r = basis_pursuit(&phi, &y, &cfg).unwrap();
        assert_eq!(r.iterations, 3);
        assert!(!r.converged);
    }
}
