//! Extended aggregation queries over recovered data.
//!
//! The paper (Sections 1 and 8) positions the sketch as a general substrate:
//! "our techniques may also be extended to solve similar aggregation
//! queries (mean, top-k, percentile, ...)". A [`BompResult`] is a compact
//! model of the whole aggregated vector — `N − nnz` entries at the mode
//! plus the recovered deviations — so those statistics can be answered
//! directly from it, without any further communication.

use crate::bomp::BompResult;
use cso_linalg::LinalgError;

/// The mean of the recovered vector `x̂ = b·1 + z`:
/// `mean = b + (Σ zᵢ)/N`.
pub fn recovered_mean(result: &BompResult) -> f64 {
    let n = result.deviations.dim() as f64;
    let dev_sum: f64 = result.deviations.entries().iter().map(|&(_, z)| z).sum();
    result.mode + dev_sum / n
}

/// The q-quantile (`q ∈ [0, 1]`) of the recovered vector, computed without
/// densifying: the unrecovered mass sits exactly at the mode, so only the
/// recovered deviations and the mode block need ordering.
pub fn recovered_quantile(result: &BompResult, q: f64) -> Result<f64, LinalgError> {
    if !(0.0..=1.0).contains(&q) {
        return Err(LinalgError::InvalidParameter {
            name: "q",
            message: "quantile must lie in [0, 1]".into(),
        });
    }
    let n = result.deviations.dim();
    if n == 0 {
        return Err(LinalgError::Empty { op: "recovered_quantile" });
    }
    // Values below / above the mode among recovered outliers.
    let mut below: Vec<f64> = result
        .deviations
        .entries()
        .iter()
        .filter(|&&(_, z)| z < 0.0)
        .map(|&(_, z)| result.mode + z)
        .collect();
    below.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let mut above: Vec<f64> = result
        .deviations
        .entries()
        .iter()
        .filter(|&&(_, z)| z > 0.0)
        .map(|&(_, z)| result.mode + z)
        .collect();
    above.sort_by(|a, b| a.partial_cmp(b).expect("finite"));

    let mode_count = n - below.len() - above.len();
    // Order statistic index (nearest-rank, 1-based clamped to [1, n]).
    let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
    if rank <= below.len() {
        Ok(below[rank - 1])
    } else if rank <= below.len() + mode_count {
        Ok(result.mode)
    } else {
        Ok(above[rank - 1 - below.len() - mode_count])
    }
}

/// Median of the recovered vector.
pub fn recovered_median(result: &BompResult) -> Result<f64, LinalgError> {
    recovered_quantile(result, 0.5)
}

/// A histogram of the recovered vector: `(bin lower edge, count)` pairs
/// over `bins` equal-width bins spanning the recovered range. Errors on
/// zero bins.
pub fn recovered_histogram(
    result: &BompResult,
    bins: usize,
) -> Result<Vec<(f64, usize)>, LinalgError> {
    if bins == 0 {
        return Err(LinalgError::InvalidParameter {
            name: "bins",
            message: "need >= 1 bin".into(),
        });
    }
    let n = result.deviations.dim();
    let mut lo = result.mode;
    let mut hi = result.mode;
    for &(_, z) in result.deviations.entries() {
        lo = lo.min(result.mode + z);
        hi = hi.max(result.mode + z);
    }
    if lo == hi {
        // Everything at the mode: one occupied bin.
        let mut out = vec![(lo, 0usize); bins];
        out[0] = (lo, n);
        return Ok(out);
    }
    let width = (hi - lo) / bins as f64;
    let index_of = |v: f64| (((v - lo) / width) as usize).min(bins - 1);
    let mut counts = vec![0usize; bins];
    counts[index_of(result.mode)] = n - result.deviations.nnz();
    for &(_, z) in result.deviations.entries() {
        counts[index_of(result.mode + z)] += 1;
    }
    Ok(counts.into_iter().enumerate().map(|(i, c)| (lo + i as f64 * width, c)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bomp::{bomp, BompConfig};
    use crate::measurement::MeasurementSpec;

    /// Exact recovery instance: N = 200, b = 100, outliers planted.
    fn recovered() -> (BompResult, Vec<f64>) {
        let n = 200;
        let spec = MeasurementSpec::new(80, n, 11).unwrap();
        let mut x = vec![100.0; n];
        x[5] = 1000.0;
        x[50] = -500.0;
        x[150] = 400.0;
        let y = spec.measure_dense(&x).unwrap();
        let r = bomp(&spec, &y, &BompConfig::default()).unwrap();
        (r, x)
    }

    fn exact_quantile(x: &[f64], q: f64) -> f64 {
        let mut s = x.to_vec();
        s.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let rank = ((q * s.len() as f64).ceil() as usize).clamp(1, s.len());
        s[rank - 1]
    }

    #[test]
    fn mean_matches_exact_aggregate() {
        let (r, x) = recovered();
        let exact: f64 = x.iter().sum::<f64>() / x.len() as f64;
        assert!((recovered_mean(&r) - exact).abs() < 1e-6);
    }

    #[test]
    fn quantiles_match_exact_order_statistics() {
        let (r, x) = recovered();
        for q in [0.0, 0.01, 0.25, 0.5, 0.75, 0.99, 1.0] {
            let got = recovered_quantile(&r, q).unwrap();
            let want = exact_quantile(&x, q);
            assert!((got - want).abs() < 1e-6, "q = {q}: {got} vs {want}");
        }
    }

    #[test]
    fn median_is_the_mode_on_majority_data() {
        let (r, _) = recovered();
        assert!((recovered_median(&r).unwrap() - 100.0).abs() < 1e-6);
    }

    #[test]
    fn quantile_rejects_out_of_range() {
        let (r, _) = recovered();
        assert!(recovered_quantile(&r, -0.1).is_err());
        assert!(recovered_quantile(&r, 1.1).is_err());
    }

    #[test]
    fn histogram_counts_sum_to_n() {
        let (r, x) = recovered();
        let h = recovered_histogram(&r, 16).unwrap();
        let total: usize = h.iter().map(|&(_, c)| c).sum();
        assert_eq!(total, x.len());
        // The mode bin dominates.
        let max_count = h.iter().map(|&(_, c)| c).max().unwrap();
        assert!(max_count >= x.len() - 5);
    }

    #[test]
    fn histogram_handles_all_at_mode() {
        let n = 50;
        let spec = MeasurementSpec::new(30, n, 3).unwrap();
        let x = vec![7.0; n];
        let y = spec.measure_dense(&x).unwrap();
        let r = bomp(&spec, &y, &BompConfig::default()).unwrap();
        let h = recovered_histogram(&r, 4).unwrap();
        assert_eq!(h[0].1, n);
        assert!(h[1..].iter().all(|&(_, c)| c == 0));
    }

    #[test]
    fn histogram_rejects_zero_bins() {
        let (r, _) = recovered();
        assert!(recovered_histogram(&r, 0).is_err());
    }
}
