//! Pluggable measurement operators (DESIGN.md §13).
//!
//! The paper's protocol only needs three things from the sensing matrix Φ:
//! linearity (so node sketches add), seeded reconstruction (so every party
//! regenerates the same Φ from a shared `u64`), and incoherent-enough
//! columns for BOMP to recover mode + outliers. A dense Gaussian has all
//! three but costs `O(M·N)` per OMP correlation pass and ~320 GB at the
//! north-star scale. [`MeasurementOp`] abstracts the contract so the same
//! recovery/serve machinery runs over structured, matrix-free backends:
//!
//! | backend | apply | transpose scan | L-sparse measure | storage |
//! |---------------|--------------|----------------|------------------|---------|
//! | `DenseGaussian` | O(M·N) | O(M·N) | O(L·M) | O(M) streamed |
//! | `Srht` | O(Np·log Np) | O(Np·log Np) | O(Np·log Np) | O(M) rows |
//! | `SeededSparse` | O(N·s) | O(N·s) | O(L·s) | O(1) |
//!
//! (`Np` = next power of two ≥ N; `s` = nonzeros per column.)
//!
//! Every backend is rebuilt bit-identically from a 3-word wire descriptor
//! (`kind`, `param`, plus the `m/n/seed` geometry the epoch already
//! carries) — see [`OpDescriptor`]. The serve layer journals exactly that
//! descriptor, so WAL replay reconstructs the same operator.

use crate::measurement::MeasurementSpec;
use cso_linalg::fwht::{fwht, hadamard_sign, next_pow2};
use cso_linalg::random::{derive_seed, stream_rng};
use cso_linalg::{LinalgError, Vector};
use rand::RngCore;
use std::collections::BTreeMap;

/// Stable wire identifier of a measurement-operator backend.
///
/// The codes are part of the serve protocol (`OpenEpoch.op_kind`) and the
/// WAL format; they must never be renumbered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum OpKind {
    /// Dense seeded Gaussian `N(0, 1/M)` — the paper's Φ0.
    Dense = 0,
    /// Row-subsampled randomized Hadamard transform, `Φ = (1/√M)·R·H·D`.
    Srht = 1,
    /// Count-sketch-style seeded sparse projection, `s` nonzeros per column.
    SeededSparse = 2,
}

impl OpKind {
    /// The on-wire code byte.
    pub fn code(self) -> u8 {
        self as u8
    }

    /// Decodes a wire code; `None` for unknown codes (the serve layer maps
    /// that to `RejectCode::BadOperator`).
    pub fn from_code(code: u8) -> Option<OpKind> {
        match code {
            0 => Some(OpKind::Dense),
            1 => Some(OpKind::Srht),
            2 => Some(OpKind::SeededSparse),
            _ => None,
        }
    }

    /// Human-readable backend name (CSV/CLI label).
    pub fn label(self) -> &'static str {
        match self {
            OpKind::Dense => "dense",
            OpKind::Srht => "srht",
            OpKind::SeededSparse => "sparse",
        }
    }
}

/// Everything needed to rebuild a [`MeasurementOperator`] bit-identically
/// on any machine: backend kind, geometry, seed, and one backend parameter
/// (`s` for [`OpKind::SeededSparse`], must be 0 otherwise).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OpDescriptor {
    /// Backend kind.
    pub kind: OpKind,
    /// Number of measurements (rows), `M`.
    pub m: usize,
    /// Ambient dimension (columns), `N`.
    pub n: usize,
    /// Shared seed.
    pub seed: u64,
    /// Backend parameter (`s` for `SeededSparse`; 0 otherwise).
    pub param: u64,
}

impl OpDescriptor {
    /// Descriptor for the dense Gaussian backend.
    pub fn dense(m: usize, n: usize, seed: u64) -> Self {
        OpDescriptor { kind: OpKind::Dense, m, n, seed, param: 0 }
    }

    /// Descriptor for the SRHT backend.
    pub fn srht(m: usize, n: usize, seed: u64) -> Self {
        OpDescriptor { kind: OpKind::Srht, m, n, seed, param: 0 }
    }

    /// Descriptor for the seeded-sparse backend with `s` nonzeros/column.
    pub fn seeded_sparse(m: usize, n: usize, seed: u64, s: u64) -> Self {
        OpDescriptor { kind: OpKind::SeededSparse, m, n, seed, param: s }
    }

    /// Reassembles a descriptor from wire fields. `None` when the kind code
    /// is unknown — the caller decides how to reject.
    pub fn from_wire(kind: u8, param: u64, m: usize, n: usize, seed: u64) -> Option<Self> {
        Some(OpDescriptor { kind: OpKind::from_code(kind)?, m, n, seed, param })
    }

    /// Builds the operator this descriptor names. Errors when the geometry
    /// or parameter is invalid for the backend.
    pub fn build(&self) -> Result<MeasurementOperator, LinalgError> {
        match self.kind {
            OpKind::Dense => {
                if self.param != 0 {
                    return Err(bad_param("dense operator takes no parameter"));
                }
                Ok(MeasurementOperator::Dense(MeasurementSpec::new(self.m, self.n, self.seed)?))
            }
            OpKind::Srht => {
                if self.param != 0 {
                    return Err(bad_param("srht operator takes no parameter"));
                }
                Ok(MeasurementOperator::Srht(SrhtOp::new(self.m, self.n, self.seed)?))
            }
            OpKind::SeededSparse => Ok(MeasurementOperator::SeededSparse(SeededSparseOp::new(
                self.m,
                self.n,
                self.seed,
                self.param as usize,
            )?)),
        }
    }
}

fn bad_param(message: &'static str) -> LinalgError {
    LinalgError::InvalidParameter { name: "op_param", message: message.into() }
}

/// A backend choice *without* geometry — what a protocol configures up
/// front, before `n` is known. Pairs with the epoch's `m/n/seed` to form an
/// [`OpDescriptor`] at run time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SketchBackend {
    /// Backend kind.
    pub kind: OpKind,
    /// Backend parameter (`s` for [`OpKind::SeededSparse`], 0 otherwise).
    pub param: u64,
}

impl Default for SketchBackend {
    /// The paper's dense Gaussian.
    fn default() -> Self {
        SketchBackend::dense()
    }
}

impl SketchBackend {
    /// Dense seeded Gaussian (the paper's Φ0).
    pub fn dense() -> Self {
        SketchBackend { kind: OpKind::Dense, param: 0 }
    }

    /// Subsampled randomized Hadamard transform.
    pub fn srht() -> Self {
        SketchBackend { kind: OpKind::Srht, param: 0 }
    }

    /// Seeded sparse projection with `s` nonzeros per column.
    pub fn seeded_sparse(s: u64) -> Self {
        SketchBackend { kind: OpKind::SeededSparse, param: s }
    }

    /// Decodes the `(kind, param)` wire pair; `None` for unknown kinds.
    pub fn from_wire(kind: u8, param: u64) -> Option<Self> {
        Some(SketchBackend { kind: OpKind::from_code(kind)?, param })
    }

    /// The `(kind, param)` wire pair.
    pub fn wire(&self) -> (u8, u64) {
        (self.kind.code(), self.param)
    }

    /// Human-readable backend name.
    pub fn label(&self) -> &'static str {
        self.kind.label()
    }

    /// The full descriptor for a concrete `(m, n, seed)` geometry.
    pub fn descriptor(&self, m: usize, n: usize, seed: u64) -> OpDescriptor {
        OpDescriptor { kind: self.kind, m, n, seed, param: self.param }
    }

    /// Builds the operator for a concrete geometry (validates the
    /// parameter against it).
    pub fn build(&self, m: usize, n: usize, seed: u64) -> Result<MeasurementOperator, LinalgError> {
        self.descriptor(m, n, seed).build()
    }
}

/// The measurement-operator contract every backend satisfies.
///
/// All methods are deterministic functions of the descriptor: two operators
/// built from equal descriptors produce bit-identical outputs for equal
/// inputs, on any machine. `measure_sparse` is additionally guaranteed
/// bit-identical to `apply` on the densified entry vector — the property
/// that lets mapper-side sparse sketching and reducer-side dense replay
/// agree exactly.
pub trait MeasurementOp {
    /// Number of measurements (rows), `M`.
    fn m(&self) -> usize;
    /// Ambient dimension (columns), `N`.
    fn n(&self) -> usize;
    /// The wire descriptor that rebuilds this operator.
    fn descriptor(&self) -> OpDescriptor;

    /// The sketch `y = Φ·x` of a dense slice (`x.len() == n`).
    fn apply(&self, x: &[f64]) -> Result<Vector, LinalgError>;

    /// All column correlations `out = Φᵀ·x` (`x.len() == m`,
    /// `out.len() == n`) — the OMP inner-loop scan.
    fn apply_transpose_into(&self, x: &[f64], out: &mut [f64]) -> Result<(), LinalgError>;

    /// Writes column `j` (length `M`) into `out`. Panics on out-of-range
    /// `j` or a wrong-length buffer — indices come from the key dictionary,
    /// so either is a logic error.
    fn column_into(&self, j: usize, out: &mut [f64]);

    /// The sketch of a sparse slice given as `(key index, value)` pairs.
    /// Duplicate indices accumulate. Bit-identical to [`MeasurementOp::apply`]
    /// on the densified vector.
    fn measure_sparse(&self, entries: &[(usize, f64)]) -> Result<Vector, LinalgError>;

    /// The BOMP bias column `φ0 = (1/√N)·Σⱼ φⱼ = (1/√N)·Φ·1` (paper
    /// equation (3)). Matrix-free backends get it in one `apply`.
    fn bias_column(&self) -> Vec<f64> {
        let ones = vec![1.0; self.n()];
        let mut y = self.apply(&ones).expect("ones vector has length n").into_vec();
        let inv = 1.0 / (self.n() as f64).sqrt();
        for v in &mut y {
            *v *= inv;
        }
        y
    }
}

/// Seed-stream salts keeping the SRHT sign/row streams disjoint from each
/// other (column streams of the other backends use the raw index space).
const SRHT_SIGN_STREAM: u64 = 0x5248_5453_4947_4e00; // "RHTSIGN\0"
const SRHT_ROW_STREAM: u64 = 0x5248_5452_4f57_5300; // "RHTROWS\0"

/// Row-subsampled randomized Hadamard transform `Φ = (1/√M)·R·H·D`:
/// `D` = seeded ±1 column signs, `H` = unnormalized `Np×Np` Hadamard
/// (`Np` = next power of two ≥ `N`, padding internal), `R` = `M` seeded
/// distinct rows. Entries are ±1/√M, matching the dense backend's `1/M`
/// variance and unit column norm. Nothing is materialized: `apply` and the
/// transpose scan are one in-place FWHT each.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SrhtOp {
    m: usize,
    n: usize,
    np: usize,
    seed: u64,
    /// The `M` sampled Hadamard rows, in sampling order (row `i` of Φ).
    rows: Vec<usize>,
    sign_seed: u64,
}

impl SrhtOp {
    /// Builds the SRHT operator for `(m, n, seed)`. Requires
    /// `0 < m <= next_pow2(n)` and `n > 0`.
    pub fn new(m: usize, n: usize, seed: u64) -> Result<Self, LinalgError> {
        if m == 0 || n == 0 {
            return Err(LinalgError::InvalidParameter {
                name: "m/n",
                message: "measurement dimensions must be positive".into(),
            });
        }
        let np = next_pow2(n);
        if m > np {
            return Err(LinalgError::InvalidParameter {
                name: "m",
                message: format!("srht needs m <= next_pow2(n) = {np}, got m = {m}").into(),
            });
        }
        // Sample M distinct rows of H by seeded rejection; the stream is a
        // pure function of the seed, so every party gets the same rows.
        let mut rng = stream_rng(seed, SRHT_ROW_STREAM);
        let mut rows = Vec::with_capacity(m);
        let mut seen = std::collections::HashSet::with_capacity(m * 2);
        while rows.len() < m {
            let r = (rng.next_u64() % np as u64) as usize;
            if seen.insert(r) {
                rows.push(r);
            }
        }
        Ok(SrhtOp { m, n, np, seed, rows, sign_seed: derive_seed(seed, SRHT_SIGN_STREAM) })
    }

    /// The ±1 sign `D[j][j]` of column `j`.
    #[inline]
    fn sign(&self, j: usize) -> f64 {
        if derive_seed(self.sign_seed, j as u64) & 1 == 0 {
            1.0
        } else {
            -1.0
        }
    }

    #[inline]
    fn scale(&self) -> f64 {
        1.0 / (self.m as f64).sqrt()
    }

    /// The internal padded transform length `Np`.
    pub fn padded_len(&self) -> usize {
        self.np
    }
}

/// Banded count-sketch-style projection: column `j` has exactly `s`
/// seeded nonzeros of value ±1/√s, one in each of `s` contiguous row
/// bands (so rows within a column are distinct and ascending). Column
/// norms are exactly 1; `measure_sparse` on an L-sparse slice costs
/// `O(L·s)` and the transpose scan is a scatter-free gather.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeededSparseOp {
    m: usize,
    n: usize,
    seed: u64,
    s: usize,
}

impl SeededSparseOp {
    /// Builds the operator with `s` nonzeros per column. Requires
    /// `1 <= s <= m` (each of the `s` bands must be non-empty).
    pub fn new(m: usize, n: usize, seed: u64, s: usize) -> Result<Self, LinalgError> {
        if m == 0 || n == 0 {
            return Err(LinalgError::InvalidParameter {
                name: "m/n",
                message: "measurement dimensions must be positive".into(),
            });
        }
        if s == 0 || s > m {
            return Err(LinalgError::InvalidParameter {
                name: "s",
                message: format!("seeded-sparse needs 1 <= s <= m = {m}, got s = {s}").into(),
            });
        }
        Ok(SeededSparseOp { m, n, seed, s })
    }

    /// Nonzeros per column.
    pub fn nnz_per_column(&self) -> usize {
        self.s
    }

    /// Streams column `j`'s pattern as `(row, value)` pairs, ascending by
    /// row. One seeded draw per band keeps generation order-independent
    /// across columns, exactly like the dense backend's column streams.
    #[inline]
    fn for_each_nonzero(&self, j: usize, mut f: impl FnMut(usize, f64)) {
        let mut rng = stream_rng(self.seed, j as u64);
        let inv = 1.0 / (self.s as f64).sqrt();
        for b in 0..self.s {
            let lo = b * self.m / self.s;
            let hi = (b + 1) * self.m / self.s;
            let row = lo + (rng.next_u64() % (hi - lo) as u64) as usize;
            let value = if rng.next_u64() & 1 == 0 { inv } else { -inv };
            f(row, value);
        }
    }
}

/// A concrete measurement operator — the closed set of backends the wire
/// protocol knows. Use [`OpDescriptor::build`] (or the constructors here)
/// to obtain one; every layer from mapper sketching to serve-side recovery
/// is generic over [`MeasurementOp`], with this enum as the value type.
#[derive(Debug, Clone, PartialEq)]
pub enum MeasurementOperator {
    /// Dense seeded Gaussian (the paper's Φ0, [`MeasurementSpec`]).
    Dense(MeasurementSpec),
    /// Subsampled randomized Hadamard transform.
    Srht(SrhtOp),
    /// Seeded sparse (count-sketch-style) projection.
    SeededSparse(SeededSparseOp),
}

impl MeasurementOperator {
    /// Dense Gaussian backend.
    pub fn dense(m: usize, n: usize, seed: u64) -> Result<Self, LinalgError> {
        OpDescriptor::dense(m, n, seed).build()
    }

    /// SRHT backend.
    pub fn srht(m: usize, n: usize, seed: u64) -> Result<Self, LinalgError> {
        OpDescriptor::srht(m, n, seed).build()
    }

    /// Seeded-sparse backend with `s` nonzeros per column.
    pub fn seeded_sparse(m: usize, n: usize, seed: u64, s: usize) -> Result<Self, LinalgError> {
        OpDescriptor::seeded_sparse(m, n, seed, s as u64).build()
    }

    /// The backend kind.
    pub fn kind(&self) -> OpKind {
        match self {
            MeasurementOperator::Dense(_) => OpKind::Dense,
            MeasurementOperator::Srht(_) => OpKind::Srht,
            MeasurementOperator::SeededSparse(_) => OpKind::SeededSparse,
        }
    }

    /// The dense spec when this is the dense backend (legacy fast paths —
    /// materialized recovery — are dense-only).
    pub fn as_dense(&self) -> Option<&MeasurementSpec> {
        match self {
            MeasurementOperator::Dense(spec) => Some(spec),
            _ => None,
        }
    }

    fn shared_dims(&self) -> (usize, usize) {
        match self {
            MeasurementOperator::Dense(spec) => (spec.m, spec.n),
            MeasurementOperator::Srht(op) => (op.m, op.n),
            MeasurementOperator::SeededSparse(op) => (op.m, op.n),
        }
    }

    fn check_apply_len(&self, len: usize, op: &'static str) -> Result<(), LinalgError> {
        if len != self.n() {
            return Err(LinalgError::DimensionMismatch {
                op,
                expected: (self.n(), 1),
                actual: (len, 1),
            });
        }
        Ok(())
    }

    fn check_transpose_lens(&self, xlen: usize, outlen: usize) -> Result<(), LinalgError> {
        if xlen != self.m() || outlen != self.n() {
            return Err(LinalgError::DimensionMismatch {
                op: "apply_transpose_into",
                expected: (self.m(), self.n()),
                actual: (xlen, outlen),
            });
        }
        Ok(())
    }
}

impl MeasurementOp for MeasurementOperator {
    fn m(&self) -> usize {
        self.shared_dims().0
    }

    fn n(&self) -> usize {
        self.shared_dims().1
    }

    fn descriptor(&self) -> OpDescriptor {
        match self {
            MeasurementOperator::Dense(spec) => OpDescriptor::dense(spec.m, spec.n, spec.seed),
            MeasurementOperator::Srht(op) => OpDescriptor::srht(op.m, op.n, op.seed),
            MeasurementOperator::SeededSparse(op) => {
                OpDescriptor::seeded_sparse(op.m, op.n, op.seed, op.s as u64)
            }
        }
    }

    fn apply(&self, x: &[f64]) -> Result<Vector, LinalgError> {
        self.check_apply_len(x.len(), "apply")?;
        match self {
            MeasurementOperator::Dense(spec) => spec.measure_dense(x),
            MeasurementOperator::Srht(op) => {
                // y = (1/√M)·R·H·D·x: sign-flip into the padded buffer,
                // one in-place FWHT, gather the sampled rows.
                let mut scratch = vec![0.0; op.np];
                for (j, (slot, xj)) in scratch.iter_mut().zip(x).enumerate() {
                    *slot = op.sign(j) * xj;
                }
                fwht(&mut scratch);
                let scale = op.scale();
                Ok(Vector::from_vec(op.rows.iter().map(|&r| scale * scratch[r]).collect()))
            }
            MeasurementOperator::SeededSparse(op) => {
                let mut y = vec![0.0; op.m];
                for (j, &xj) in x.iter().enumerate() {
                    if xj != 0.0 {
                        op.for_each_nonzero(j, |row, value| y[row] += value * xj);
                    }
                }
                Ok(Vector::from_vec(y))
            }
        }
    }

    fn apply_transpose_into(&self, x: &[f64], out: &mut [f64]) -> Result<(), LinalgError> {
        self.check_transpose_lens(x.len(), out.len())?;
        match self {
            MeasurementOperator::Dense(spec) => spec.correlations_into(x, out),
            MeasurementOperator::Srht(op) => {
                // Φᵀx = (1/√M)·D·H·Rᵀx: scatter into the sampled rows
                // (distinct by construction), FWHT (H is symmetric),
                // sign-flip, truncate the padding.
                let mut scratch = vec![0.0; op.np];
                let scale = op.scale();
                for (&r, &xi) in op.rows.iter().zip(x) {
                    scratch[r] = scale * xi;
                }
                fwht(&mut scratch);
                for (j, (slot, v)) in out.iter_mut().zip(&scratch).enumerate() {
                    *slot = op.sign(j) * v;
                }
                Ok(())
            }
            MeasurementOperator::SeededSparse(op) => {
                for (j, slot) in out.iter_mut().enumerate() {
                    let mut acc = 0.0;
                    op.for_each_nonzero(j, |row, value| acc += value * x[row]);
                    *slot = acc;
                }
                Ok(())
            }
        }
    }

    fn column_into(&self, j: usize, out: &mut [f64]) {
        assert!(j < self.n(), "column {j} out of bounds ({})", self.n());
        assert_eq!(out.len(), self.m(), "buffer length must equal m");
        match self {
            MeasurementOperator::Dense(spec) => spec.fill_column(j, out),
            MeasurementOperator::Srht(op) => {
                let sd = op.scale() * op.sign(j);
                for (slot, &r) in out.iter_mut().zip(&op.rows) {
                    *slot = sd * hadamard_sign(r as u64, j as u64);
                }
            }
            MeasurementOperator::SeededSparse(op) => {
                out.fill(0.0);
                op.for_each_nonzero(j, |row, value| out[row] = value);
            }
        }
    }

    fn measure_sparse(&self, entries: &[(usize, f64)]) -> Result<Vector, LinalgError> {
        match self {
            MeasurementOperator::Dense(spec) => {
                // Unlike the legacy `MeasurementSpec::measure_sparse`
                // (which axpy's duplicates one entry at a time), coalesce
                // first and walk keys ascending — the operation sequence
                // `measure_dense` performs on the densified vector — so the
                // trait's bit-identity contract holds for duplicates too.
                let mut y = vec![0.0; spec.m];
                let mut col = vec![0.0; spec.m];
                for (j, xj) in coalesce(spec.n, entries)? {
                    if xj != 0.0 {
                        spec.fill_column(j, &mut col);
                        cso_linalg::vector::axpy(xj, &col, &mut y);
                    }
                }
                Ok(Vector::from_vec(y))
            }
            MeasurementOperator::Srht(op) => {
                // Densify then apply: the FWHT touches all Np slots anyway,
                // and going through `apply` is what makes the sparse and
                // dense sketch paths bit-identical.
                let mut x = vec![0.0; op.n];
                for &(j, v) in entries {
                    if j >= op.n {
                        return Err(sparse_out_of_range(op.n, j));
                    }
                    x[j] += v;
                }
                self.apply(&x)
            }
            MeasurementOperator::SeededSparse(op) => {
                let mut y = vec![0.0; op.m];
                for (j, xj) in coalesce(op.n, entries)? {
                    if xj != 0.0 {
                        op.for_each_nonzero(j, |row, value| y[row] += value * xj);
                    }
                }
                Ok(Vector::from_vec(y))
            }
        }
    }

    fn bias_column(&self) -> Vec<f64> {
        match self {
            // The dense backend streams columns without densifying a ones
            // vector; keep that (bit-compatible) path.
            MeasurementOperator::Dense(spec) => spec.bias_column(),
            _ => {
                let ones = vec![1.0; self.n()];
                let mut y = self.apply(&ones).expect("ones vector has length n").into_vec();
                let inv = 1.0 / (self.n() as f64).sqrt();
                for v in &mut y {
                    *v *= inv;
                }
                y
            }
        }
    }
}

fn sparse_out_of_range(n: usize, j: usize) -> LinalgError {
    LinalgError::DimensionMismatch { op: "measure_sparse", expected: (n, 1), actual: (j, 1) }
}

/// Sums duplicate indices in encounter order (the float sums densifying
/// would produce) and yields `(index, value)` ascending by index — the
/// traversal order `apply` uses on a dense vector.
fn coalesce(n: usize, entries: &[(usize, f64)]) -> Result<BTreeMap<usize, f64>, LinalgError> {
    let mut coalesced: BTreeMap<usize, f64> = BTreeMap::new();
    for &(j, v) in entries {
        if j >= n {
            return Err(sparse_out_of_range(n, j));
        }
        *coalesced.entry(j).or_insert(0.0) += v;
    }
    Ok(coalesced)
}

#[cfg(test)]
mod tests {
    use super::*;

    const M: usize = 24;
    const N: usize = 100;
    const SEED: u64 = 4242;

    fn backends() -> Vec<MeasurementOperator> {
        vec![
            MeasurementOperator::dense(M, N, SEED).unwrap(),
            MeasurementOperator::srht(M, N, SEED).unwrap(),
            MeasurementOperator::seeded_sparse(M, N, SEED, 6).unwrap(),
        ]
    }

    fn test_vector(n: usize, salt: u64) -> Vec<f64> {
        (0..n).map(|i| (((i as u64 * 2654435761 + salt) % 97) as f64 - 48.0) * 0.31).collect()
    }

    #[test]
    fn descriptor_round_trips_through_wire_fields() {
        for op in backends() {
            let d = op.descriptor();
            let (kind, param) = (d.kind.code(), d.param);
            let back = OpDescriptor::from_wire(kind, param, d.m, d.n, d.seed).unwrap();
            assert_eq!(back, d);
            let rebuilt = back.build().unwrap();
            assert_eq!(rebuilt, op);
        }
        assert!(OpDescriptor::from_wire(3, 0, M, N, SEED).is_none());
    }

    #[test]
    fn sketch_backend_pairs_with_geometry() {
        assert_eq!(SketchBackend::default(), SketchBackend::dense());
        for (backend, kind) in [
            (SketchBackend::dense(), OpKind::Dense),
            (SketchBackend::srht(), OpKind::Srht),
            (SketchBackend::seeded_sparse(6), OpKind::SeededSparse),
        ] {
            let (code, param) = backend.wire();
            assert_eq!(SketchBackend::from_wire(code, param), Some(backend));
            assert_eq!(backend.label(), kind.label());
            let d = backend.descriptor(M, N, SEED);
            assert_eq!(d, OpDescriptor { kind, m: M, n: N, seed: SEED, param });
            assert_eq!(backend.build(M, N, SEED).unwrap().kind(), kind);
        }
        assert_eq!(SketchBackend::from_wire(9, 0), None);
    }

    #[test]
    fn kind_codes_are_stable() {
        assert_eq!(OpKind::Dense.code(), 0);
        assert_eq!(OpKind::Srht.code(), 1);
        assert_eq!(OpKind::SeededSparse.code(), 2);
        for k in [OpKind::Dense, OpKind::Srht, OpKind::SeededSparse] {
            assert_eq!(OpKind::from_code(k.code()), Some(k));
        }
        assert_eq!(OpKind::from_code(77), None);
    }

    #[test]
    fn invalid_params_rejected() {
        assert!(MeasurementOperator::seeded_sparse(M, N, SEED, 0).is_err());
        assert!(MeasurementOperator::seeded_sparse(M, N, SEED, M + 1).is_err());
        assert!(SrhtOp::new(0, N, SEED).is_err());
        assert!(SrhtOp::new(300, N, SEED).is_err(), "m > next_pow2(n)");
        assert!(OpDescriptor { param: 9, ..OpDescriptor::dense(M, N, SEED) }.build().is_err());
        assert!(OpDescriptor { param: 9, ..OpDescriptor::srht(M, N, SEED) }.build().is_err());
    }

    #[test]
    fn apply_matches_explicit_columns() {
        // y = Σ xⱼ·φⱼ with φⱼ from column_into must agree with apply.
        let x = test_vector(N, 5);
        for op in backends() {
            let y = op.apply(&x).unwrap();
            let mut want = vec![0.0; M];
            let mut col = vec![0.0; M];
            for (j, &xj) in x.iter().enumerate() {
                op.column_into(j, &mut col);
                cso_linalg::vector::axpy(xj, &col, &mut want);
            }
            let diff: f64 = y.iter().zip(&want).map(|(a, b)| (a - b).abs()).sum();
            assert!(diff < 1e-9, "{:?}: diff = {diff}", op.kind());
        }
    }

    #[test]
    fn transpose_matches_column_dots() {
        let x = test_vector(M, 9);
        for op in backends() {
            let mut out = vec![0.0; N];
            op.apply_transpose_into(&x, &mut out).unwrap();
            let mut col = vec![0.0; M];
            for j in [0usize, 1, 17, N - 1] {
                op.column_into(j, &mut col);
                let want = cso_linalg::vector::dot(&col, &x);
                assert!((out[j] - want).abs() < 1e-10, "{:?} col {j}", op.kind());
            }
        }
    }

    #[test]
    fn measure_sparse_bit_identical_to_densified_apply() {
        let entries = [(3usize, 2.5), (17, -1.25), (3, 0.5), (99, 4.0), (42, 0.0)];
        let mut dense = vec![0.0; N];
        for &(j, v) in &entries {
            dense[j] += v;
        }
        for op in backends() {
            let a = op.apply(&dense).unwrap();
            let b = op.measure_sparse(&entries).unwrap();
            for (i, (p, q)) in a.iter().zip(b.iter()).enumerate() {
                assert_eq!(p.to_bits(), q.to_bits(), "{:?} row {i}", op.kind());
            }
        }
    }

    #[test]
    fn measure_sparse_rejects_out_of_range() {
        for op in backends() {
            assert!(op.measure_sparse(&[(N, 1.0)]).is_err(), "{:?}", op.kind());
        }
    }

    #[test]
    fn apply_checks_lengths() {
        for op in backends() {
            assert!(op.apply(&vec![0.0; N - 1]).is_err());
            let mut out = vec![0.0; N];
            assert!(op.apply_transpose_into(&vec![0.0; M - 1], &mut out).is_err());
            assert!(op.apply_transpose_into(&vec![0.0; M], &mut out[..N - 1]).is_err());
        }
    }

    #[test]
    fn columns_have_unit_norm_in_expectation() {
        // Dense: E‖φⱼ‖² = 1. SRHT/sparse: exactly 1 by construction.
        let mut col = vec![0.0; M];
        for op in backends() {
            let mut total = 0.0;
            for j in 0..N {
                op.column_into(j, &mut col);
                total += col.iter().map(|v| v * v).sum::<f64>();
            }
            let mean = total / N as f64;
            let tol = if op.kind() == OpKind::Dense { 0.2 } else { 1e-12 };
            assert!((mean - 1.0).abs() < tol, "{:?}: mean col norm² = {mean}", op.kind());
        }
    }

    #[test]
    fn linearity_of_measurement() {
        let x1 = test_vector(N, 1);
        let x2 = test_vector(N, 2);
        let sum: Vec<f64> = x1.iter().zip(&x2).map(|(a, b)| a + b).collect();
        for op in backends() {
            let y1 = op.apply(&x1).unwrap();
            let y2 = op.apply(&x2).unwrap();
            let ysum = op.apply(&sum).unwrap();
            assert!(ysum.approx_eq(&y1.add(&y2).unwrap(), 1e-9), "{:?}", op.kind());
        }
    }

    #[test]
    fn bias_column_is_scaled_column_sum() {
        for op in backends() {
            let bias = op.bias_column();
            let mut want = vec![0.0; M];
            let mut col = vec![0.0; M];
            for j in 0..N {
                op.column_into(j, &mut col);
                cso_linalg::vector::axpy(1.0, &col, &mut want);
            }
            let inv = 1.0 / (N as f64).sqrt();
            for (b, w) in bias.iter().zip(&want) {
                assert!((b - w * inv).abs() < 1e-9, "{:?}", op.kind());
            }
        }
    }

    #[test]
    fn dense_backend_matches_legacy_spec_bitwise() {
        let spec = MeasurementSpec::new(M, N, SEED).unwrap();
        let op = MeasurementOperator::Dense(spec);
        let x = test_vector(N, 3);
        let legacy = spec.measure_dense(&x).unwrap();
        let via_op = op.apply(&x).unwrap();
        assert!(legacy.iter().zip(via_op.iter()).all(|(a, b)| a.to_bits() == b.to_bits()));
        let r = test_vector(M, 4);
        let mut out = vec![0.0; N];
        op.apply_transpose_into(&r, &mut out).unwrap();
        let legacy_corr = spec.correlations(&r).unwrap();
        assert!(legacy_corr.iter().zip(&out).all(|(a, b)| a.to_bits() == b.to_bits()));
        assert_eq!(op.bias_column(), spec.bias_column());
    }

    #[test]
    fn srht_padding_and_rows_are_deterministic() {
        let a = SrhtOp::new(M, N, SEED).unwrap();
        let b = SrhtOp::new(M, N, SEED).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.padded_len(), 128);
        // Rows are distinct.
        let mut rows = a.rows.clone();
        rows.sort_unstable();
        rows.dedup();
        assert_eq!(rows.len(), M);
    }

    #[test]
    fn sparse_nonzeros_are_banded_and_deterministic() {
        let op = SeededSparseOp::new(M, N, SEED, 6).unwrap();
        assert_eq!(op.nnz_per_column(), 6);
        for j in 0..N {
            let mut rows = Vec::new();
            op.for_each_nonzero(j, |row, value| {
                rows.push(row);
                assert!((value.abs() - 1.0 / 6.0f64.sqrt()).abs() < 1e-15);
            });
            assert_eq!(rows.len(), 6);
            assert!(rows.windows(2).all(|w| w[0] < w[1]), "ascending distinct rows: {rows:?}");
            assert!(*rows.last().unwrap() < M);
        }
    }
}
