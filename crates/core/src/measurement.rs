//! Random Gaussian measurement matrices.
//!
//! The paper's protocol (Section 3.1) has every node generate *the same*
//! `M × N` measurement matrix `Φ0` from a shared seed, with entries i.i.d.
//! `N(0, 1/M)`, and ship only the `M`-length sketch `y_l = Φ0 · x_l`. The
//! aggregator regenerates `Φ0` from the same seed for recovery, so the
//! matrix itself never crosses the network (the paper's Algorithms 3/4 pass
//! `seed` to both CS-Mapper and CS-Reducer).
//!
//! [`MeasurementSpec`] is that shared description `(M, N, seed)`. Each
//! column is generated from its own derived seed, which makes generation
//! order-independent: a mapper holding a sparse slice can generate only the
//! columns it needs and still agree bit-for-bit with the reducer that
//! materializes the whole matrix.

use cso_linalg::random::{derive_seed, GaussianSampler};
use cso_linalg::{ColMatrix, LinalgError, Vector};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Shared description of a measurement matrix: shape plus the seed all
/// parties agree on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MeasurementSpec {
    /// Number of measurements (rows), `M`.
    pub m: usize,
    /// Ambient dimension (columns), `N` — the global key-space size.
    pub n: usize,
    /// Seed from which every column stream is derived.
    pub seed: u64,
}

impl MeasurementSpec {
    /// Creates a spec. Errors when either dimension is zero.
    pub fn new(m: usize, n: usize, seed: u64) -> Result<Self, LinalgError> {
        if m == 0 || n == 0 {
            return Err(LinalgError::InvalidParameter {
                name: "m/n",
                message: "measurement dimensions must be positive".into(),
            });
        }
        Ok(MeasurementSpec { m, n, seed })
    }

    /// Compression ratio `M / N` — the fraction of the data volume a sketch
    /// transmits relative to shipping the dense vector.
    pub fn compression_ratio(&self) -> f64 {
        self.m as f64 / self.n as f64
    }

    /// Generates column `j` (length `M`, entries `N(0, 1/M)`).
    ///
    /// Panics when `j >= n`; column indices come from the global key
    /// dictionary, so an out-of-range index is a logic error.
    pub fn column(&self, j: usize) -> Vec<f64> {
        assert!(j < self.n, "column {j} out of bounds ({})", self.n);
        let mut col = vec![0.0; self.m];
        self.fill_column(j, &mut col);
        col
    }

    /// Fills a caller-provided buffer with column `j`, avoiding per-column
    /// allocation in streaming paths.
    pub fn fill_column(&self, j: usize, out: &mut [f64]) {
        assert_eq!(out.len(), self.m, "buffer length must equal m");
        let rng = StdRng::seed_from_u64(derive_seed(self.seed, j as u64));
        let mut g = GaussianSampler::new(rng);
        let std = 1.0 / (self.m as f64).sqrt();
        g.fill(out, std);
    }

    /// Materializes the full `M × N` matrix. Suitable when `M·N` fits in
    /// memory (recovery-side); mappers with sparse slices should prefer
    /// [`MeasurementSpec::measure_sparse`]. Column generation is
    /// embarrassingly parallel (every column has its own derived seed), so
    /// large matrices are filled across threads; the result is
    /// bit-identical to [`MeasurementSpec::materialize_serial`].
    pub fn materialize(&self) -> ColMatrix {
        const PAR_MIN_ENTRIES: usize = 1 << 20;
        let threads = std::thread::available_parallelism().map_or(1, |t| t.get());
        if threads == 1 || self.m * self.n < PAR_MIN_ENTRIES {
            return self.materialize_serial();
        }
        let mut data = vec![0.0f64; self.m * self.n];
        let cols_per_chunk = self.n.div_ceil(threads);
        std::thread::scope(|scope| {
            for (chunk_idx, chunk) in data.chunks_mut(self.m * cols_per_chunk).enumerate() {
                let first_col = chunk_idx * cols_per_chunk;
                scope.spawn(move || {
                    for (offset, col) in chunk.chunks_mut(self.m).enumerate() {
                        self.fill_column(first_col + offset, col);
                    }
                });
            }
        });
        ColMatrix::from_col_major(self.m, self.n, data).expect("sized buffer")
    }

    /// Single-threaded materialization (reference implementation).
    pub fn materialize_serial(&self) -> ColMatrix {
        let mut m = ColMatrix::zeros(self.m, self.n);
        for j in 0..self.n {
            self.fill_column(j, m.col_mut(j));
        }
        m
    }

    /// Computes the sketch `y = Φ0 · x` for a dense slice, streaming the
    /// matrix column-by-column (memory `O(M)` instead of `O(M·N)`).
    pub fn measure_dense(&self, x: &[f64]) -> Result<Vector, LinalgError> {
        if x.len() != self.n {
            return Err(LinalgError::DimensionMismatch {
                op: "measure_dense",
                expected: (self.n, 1),
                actual: (x.len(), 1),
            });
        }
        let mut y = vec![0.0; self.m];
        let mut col = vec![0.0; self.m];
        for (j, &xj) in x.iter().enumerate() {
            if xj != 0.0 {
                self.fill_column(j, &mut col);
                cso_linalg::vector::axpy(xj, &col, &mut y);
            }
        }
        Ok(Vector::from_vec(y))
    }

    /// Computes the sketch for a sparse slice given as `(key index, value)`
    /// pairs — the common mapper-side case where a node only saw a subset
    /// of the global key space. Duplicate indices accumulate.
    pub fn measure_sparse(&self, entries: &[(usize, f64)]) -> Result<Vector, LinalgError> {
        let mut y = vec![0.0; self.m];
        let mut col = vec![0.0; self.m];
        for &(j, v) in entries {
            if j >= self.n {
                return Err(LinalgError::DimensionMismatch {
                    op: "measure_sparse",
                    expected: (self.n, 1),
                    actual: (j, 1),
                });
            }
            if v != 0.0 {
                self.fill_column(j, &mut col);
                cso_linalg::vector::axpy(v, &col, &mut y);
            }
        }
        Ok(Vector::from_vec(y))
    }

    /// Computes all column correlations `Φ0ᵀ · x` (one `⟨φ_j, x⟩` per key)
    /// without materializing the matrix: columns are regenerated in small
    /// batches and reduced through the blocked
    /// [`cso_linalg::gemv::gemv_transpose_into`] kernel. Bit-identical to
    /// `materialize().matvec_transpose(x)` — the streamed and in-memory
    /// recovery paths must agree exactly.
    pub fn correlations(&self, x: &[f64]) -> Result<Vector, LinalgError> {
        let mut out = vec![0.0; self.n];
        self.correlations_into(x, &mut out)?;
        Ok(Vector::from_vec(out))
    }

    /// [`MeasurementSpec::correlations`] into a caller-provided buffer of
    /// length `N` — the allocation-free form the [`crate::ops`] trait uses.
    pub fn correlations_into(&self, x: &[f64], out: &mut [f64]) -> Result<(), LinalgError> {
        const BLOCK: usize = 64;
        if x.len() != self.m || out.len() != self.n {
            return Err(LinalgError::DimensionMismatch {
                op: "correlations",
                expected: (self.m, self.n),
                actual: (x.len(), out.len()),
            });
        }
        let mut cols = vec![0.0; self.m * BLOCK];
        for (b, chunk) in out.chunks_mut(BLOCK).enumerate() {
            let first = b * BLOCK;
            let block = &mut cols[..self.m * chunk.len()];
            for (offset, col) in block.chunks_mut(self.m).enumerate() {
                self.fill_column(first + offset, col);
            }
            cso_linalg::gemv::gemv_transpose_into(block, self.m, x, chunk);
        }
        Ok(())
    }

    /// The BOMP bias column `φ0 = (1/√N) · Σⱼ φⱼ` (paper equation (3)).
    pub fn bias_column(&self) -> Vec<f64> {
        let mut s = vec![0.0; self.m];
        let mut col = vec![0.0; self.m];
        for j in 0..self.n {
            self.fill_column(j, &mut col);
            cso_linalg::vector::axpy(1.0, &col, &mut s);
        }
        let inv = 1.0 / (self.n as f64).sqrt();
        for v in &mut s {
            *v *= inv;
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> MeasurementSpec {
        MeasurementSpec::new(16, 40, 1234).unwrap()
    }

    #[test]
    fn new_rejects_zero_dims() {
        assert!(MeasurementSpec::new(0, 5, 1).is_err());
        assert!(MeasurementSpec::new(5, 0, 1).is_err());
    }

    #[test]
    fn compression_ratio() {
        assert!((spec().compression_ratio() - 0.4).abs() < 1e-15);
    }

    #[test]
    fn columns_are_deterministic_and_order_independent() {
        let s = spec();
        let c5_first = s.column(5);
        let _ = s.column(0);
        let c5_again = s.column(5);
        assert_eq!(c5_first, c5_again);
        // Another spec instance with the same parameters agrees.
        let s2 = MeasurementSpec::new(16, 40, 1234).unwrap();
        assert_eq!(s2.column(5), c5_first);
    }

    #[test]
    fn different_columns_and_seeds_differ() {
        let s = spec();
        assert_ne!(s.column(0), s.column(1));
        let other = MeasurementSpec::new(16, 40, 999).unwrap();
        assert_ne!(other.column(0), s.column(0));
    }

    #[test]
    fn column_fill_column_materialize_agree_bitwise() {
        // Regression guard: `column` must stay a thin wrapper over
        // `fill_column` (it used to duplicate the generation loop), and
        // both must agree bit-for-bit with the materialized matrix.
        let s = MeasurementSpec::new(32, 129, 2024).unwrap();
        let full = s.materialize();
        let mut buf = vec![0.0; 32];
        for j in 0..129 {
            let owned = s.column(j);
            s.fill_column(j, &mut buf);
            for i in 0..32 {
                assert_eq!(owned[i].to_bits(), buf[i].to_bits(), "col {j} row {i}");
                assert_eq!(owned[i].to_bits(), full.col(j)[i].to_bits(), "col {j} row {i}");
            }
        }
    }

    #[test]
    fn materialize_matches_streamed_columns() {
        let s = spec();
        let full = s.materialize();
        for j in [0usize, 7, 39] {
            assert_eq!(full.col(j), s.column(j).as_slice());
        }
    }

    #[test]
    fn parallel_materialize_is_bit_identical_to_serial() {
        // Large enough to take the threaded path on multi-core hosts.
        let s = MeasurementSpec::new(128, 8192, 99).unwrap();
        let par = s.materialize();
        let ser = s.materialize_serial();
        assert_eq!(par.as_col_major(), ser.as_col_major());
    }

    #[test]
    fn entry_variance_is_one_over_m() {
        let s = MeasurementSpec::new(64, 500, 42).unwrap();
        let full = s.materialize();
        let data = full.as_col_major();
        let var: f64 = data.iter().map(|x| x * x).sum::<f64>() / data.len() as f64;
        assert!((var - 1.0 / 64.0).abs() < 0.002, "var = {var}");
    }

    #[test]
    fn measure_dense_equals_matvec() {
        let s = spec();
        let x: Vec<f64> = (0..40).map(|i| (i as f64) - 20.0).collect();
        let streamed = s.measure_dense(&x).unwrap();
        let full = s.materialize().matvec(&Vector::from_vec(x)).unwrap();
        assert!(streamed.approx_eq(&full, 1e-12));
    }

    #[test]
    fn measure_dense_checks_length() {
        assert!(spec().measure_dense(&[0.0; 3]).is_err());
    }

    #[test]
    fn measure_sparse_equals_dense_on_same_data() {
        let s = spec();
        let mut x = vec![0.0; 40];
        x[3] = 2.0;
        x[17] = -5.0;
        let dense = s.measure_dense(&x).unwrap();
        let sparse = s.measure_sparse(&[(3, 2.0), (17, -5.0)]).unwrap();
        assert!(dense.approx_eq(&sparse, 1e-12));
    }

    #[test]
    fn measure_sparse_rejects_out_of_range() {
        assert!(spec().measure_sparse(&[(40, 1.0)]).is_err());
    }

    #[test]
    fn linearity_of_measurement() {
        // y(x1 + x2) = y(x1) + y(x2) — the property the whole distributed
        // aggregation rests on (paper equation (1)).
        let s = spec();
        let x1: Vec<f64> = (0..40).map(|i| (i % 7) as f64).collect();
        let x2: Vec<f64> = (0..40).map(|i| -((i % 3) as f64)).collect();
        let sum: Vec<f64> = x1.iter().zip(&x2).map(|(a, b)| a + b).collect();
        let y1 = s.measure_dense(&x1).unwrap();
        let y2 = s.measure_dense(&x2).unwrap();
        let ysum = s.measure_dense(&sum).unwrap();
        let combined = y1.add(&y2).unwrap();
        assert!(ysum.approx_eq(&combined, 1e-10));
    }

    #[test]
    fn streamed_correlations_match_materialized_bitwise() {
        // Regression guard for the fused recovery path: the streamed-column
        // correlation scan and the in-memory blocked kernel must agree
        // bit-for-bit, including at a non-multiple-of-block N with a
        // partial final batch.
        let s = MeasurementSpec::new(24, 197, 77).unwrap();
        let x: Vec<f64> = (0..24).map(|i| ((i * 31 % 17) as f64 - 8.0) * 0.37).collect();
        let streamed = s.correlations(&x).unwrap();
        let full = s.materialize().matvec_transpose(&Vector::from_vec(x.clone())).unwrap();
        for (j, (a, b)) in streamed.iter().zip(full.iter()).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "col {j}");
        }
        // And both equal the naive per-column dot.
        for j in [0usize, 63, 64, 196] {
            let naive = cso_linalg::vector::dot(&s.column(j), &x);
            assert_eq!(streamed.as_slice()[j].to_bits(), naive.to_bits());
        }
    }

    #[test]
    fn correlations_check_input_length() {
        assert!(spec().correlations(&[0.0; 3]).is_err());
    }

    #[test]
    fn bias_column_is_scaled_column_sum() {
        let s = spec();
        let bias = s.bias_column();
        let full = s.materialize();
        let sum = full.column_sum();
        let inv = 1.0 / (40.0f64).sqrt();
        for (b, v) in bias.iter().zip(sum.iter()) {
            assert!((b - v * inv).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn column_out_of_range_panics() {
        spec().column(40);
    }
}
