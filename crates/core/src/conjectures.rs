//! Numerical verification of the paper's two conjectures (Section 4).
//!
//! Theorem 1's proof rests on two conjectures about weakly-dependent
//! Gaussian ensembles that the authors verified by "extensive numerical
//! experiments". The functions here regenerate those experiments:
//!
//! - **Conjecture 1 (Near-Isometric Transformation)**: for a random
//!   `M × (s+1)` matrix `Φ*` whose first column is weakly dependent on the
//!   others (covariance `ζ·I`), any `r ∈ span(Φ*)` satisfies
//!   `‖Φ*ᵀ·r‖₂ ≥ 0.5·‖r‖₂` with overwhelming probability.
//! - **Conjecture 2 (Near-Independent Inner Product)**: for weakly-dependent
//!   Gaussian `x, y` with `E[xyᵀ] = ζ·I` and `y' = y/‖y‖₂`,
//!   `P(|⟨x, y'⟩| ≤ ε) ≥ 1 − e^{−ε²·a·M/2}` with `a = 1.1`.

use crate::ops::{MeasurementOp, MeasurementOperator};
use cso_linalg::random::{stream_rng, GaussianSampler};
use cso_linalg::{ColMatrix, LinalgError, Vector};
use rand::RngCore;

/// Outcome of a batch of conjecture trials.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrialStats {
    /// Trials run.
    pub trials: usize,
    /// Trials in which the conjectured inequality held.
    pub successes: usize,
    /// Smallest observed margin ratio (see the specific conjecture for the
    /// ratio definition); > 1 means the inequality held with room to spare.
    pub min_margin: f64,
}

impl TrialStats {
    /// Empirical success rate.
    pub fn success_rate(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.successes as f64 / self.trials as f64
        }
    }
}

/// Generates the weakly-dependent ensemble of Conjecture 1: `s` independent
/// columns with `N(0, 1/M)` entries plus a first column
/// `φ0 = ζ·Σφᵢ + √(1 − s·ζ²)·g` whose entries keep variance `1/M` and have
/// per-entry covariance `ζ/M` against each other column — the same
/// structure as BOMP's bias column (`ζ = 1/√N`, maximal at `1/√s`).
fn dependent_ensemble(m: usize, s: usize, zeta: f64, seed: u64) -> ColMatrix {
    let std = 1.0 / (m as f64).sqrt();
    let mut cols: Vec<Vector> = Vec::with_capacity(s + 1);
    let mut g = GaussianSampler::new(stream_rng(seed, 1));
    // Independent columns first.
    let mut indep: Vec<Vec<f64>> = Vec::with_capacity(s);
    for _ in 0..s {
        let mut c = vec![0.0; m];
        g.fill(&mut c, std);
        indep.push(c);
    }
    // φ0 = ζ·Σφᵢ + √(1 − s·ζ²)·fresh  (unit total variance per entry).
    let resid_var = 1.0 - s as f64 * zeta * zeta;
    assert!(resid_var >= 0.0, "ζ too large for s (need s·ζ² ≤ 1)");
    let mut c0 = vec![0.0; m];
    for c in &indep {
        cso_linalg::vector::axpy(zeta, c, &mut c0);
    }
    let mut fresh = vec![0.0; m];
    g.fill(&mut fresh, std);
    cso_linalg::vector::axpy(resid_var.sqrt(), &fresh, &mut c0);
    cols.push(Vector::from_vec(c0));
    cols.extend(indep.into_iter().map(Vector::from_vec));
    ColMatrix::from_columns(&cols).expect("non-empty ensemble")
}

/// Runs `trials` random tests of Conjecture 1 with the given shape and
/// dependence strength. Each trial draws a fresh ensemble and a random
/// `r ∈ span(Φ*)` and checks `‖Φ*ᵀr‖₂ ≥ 0.5‖r‖₂`. The margin ratio is
/// `‖Φ*ᵀr‖₂ / (0.5‖r‖₂)`.
pub fn verify_conjecture1(
    m: usize,
    s: usize,
    zeta: f64,
    trials: usize,
    seed: u64,
) -> Result<TrialStats, LinalgError> {
    if m == 0 || s == 0 {
        return Err(LinalgError::InvalidParameter {
            name: "m/s",
            message: "dimensions must be positive".into(),
        });
    }
    let mut successes = 0;
    let mut min_margin = f64::INFINITY;
    for t in 0..trials {
        let phi_star = dependent_ensemble(m, s, zeta, seed.wrapping_add(t as u64));
        // Random r in span(Φ*): random combination of the columns.
        let mut g = GaussianSampler::new(stream_rng(seed ^ 0xABCD, t as u64));
        let mut coeffs = vec![0.0; s + 1];
        g.fill(&mut coeffs, 1.0);
        let r = phi_star.matvec(&Vector::from_vec(coeffs))?;
        let rn = r.norm2();
        if rn == 0.0 {
            continue;
        }
        let lhs = phi_star.matvec_transpose(&r)?.norm2();
        let margin = lhs / (0.5 * rn);
        min_margin = min_margin.min(margin);
        if margin >= 1.0 {
            successes += 1;
        }
    }
    Ok(TrialStats { trials, successes, min_margin })
}

/// Runs `trials` random tests of Conjecture 2: draws weakly-dependent
/// `x, y ~ N(0, I/M)` with per-entry covariance `ζ`, normalizes `y`, and
/// checks `|⟨x, y'⟩| ≤ ε`. Success must occur at rate at least
/// `1 − e^{−ε²·a·M/2}` for the conjecture (with `a = 1.1`) to stand; the
/// margin ratio reported is `ε / |⟨x, y'⟩|`.
pub fn verify_conjecture2(
    m: usize,
    zeta: f64,
    epsilon: f64,
    trials: usize,
    seed: u64,
) -> Result<TrialStats, LinalgError> {
    if m == 0 {
        return Err(LinalgError::InvalidParameter {
            name: "m",
            message: "must be positive".into(),
        });
    }
    if epsilon <= 0.0 {
        return Err(LinalgError::InvalidParameter {
            name: "epsilon",
            message: "must be positive".into(),
        });
    }
    let std = 1.0 / (m as f64).sqrt();
    // BOMP's bias column has per-entry covariance ζ/M against the other
    // columns (ζ = 1/√N), i.e. per-entry *correlation* ζ — that is the
    // dependence strength we plant here.
    let rho = zeta.clamp(-1.0, 1.0);
    let resid = (1.0 - rho * rho).sqrt();
    let mut successes = 0;
    let mut min_margin = f64::INFINITY;
    for t in 0..trials {
        let mut g = GaussianSampler::new(stream_rng(seed, t as u64));
        let mut y = vec![0.0; m];
        g.fill(&mut y, std);
        let mut w = vec![0.0; m];
        g.fill(&mut w, std);
        let x: Vec<f64> = y.iter().zip(&w).map(|(yi, wi)| rho * yi + resid * wi).collect();
        let yn = cso_linalg::vector::norm2(&y);
        if yn == 0.0 {
            continue;
        }
        let ip = cso_linalg::vector::dot(&x, &y).abs() / yn;
        let margin = epsilon / ip.max(f64::MIN_POSITIVE);
        min_margin = min_margin.min(margin);
        if ip <= epsilon {
            successes += 1;
        }
    }
    Ok(TrialStats { trials, successes, min_margin })
}

/// The conjectured lower bound on Conjecture 2's success probability,
/// `1 − e^{−ε²·a·M/2}` with the paper's `a = 1.1`.
pub fn conjecture2_bound(m: usize, epsilon: f64, a: f64) -> f64 {
    1.0 - (-epsilon * epsilon * a * m as f64 / 2.0).exp()
}

/// Draws `count` distinct random column indices of `op` from a seeded
/// stream (rejection sampling; `count` ≪ `N` in every use).
fn sample_columns(op: &MeasurementOperator, count: usize, seed: u64) -> Vec<usize> {
    let mut rng = stream_rng(seed, 0x636f6c73); // "cols"
    let mut picked = Vec::with_capacity(count);
    let mut seen = std::collections::HashSet::with_capacity(count * 2);
    while picked.len() < count {
        let j = (rng.next_u64() % op.n() as u64) as usize;
        if seen.insert(j) {
            picked.push(j);
        }
    }
    picked
}

/// Conjecture 1 over an actual measurement operator: each trial samples
/// `s` distinct columns of `op`, prepends the operator's real bias column
/// (the exact `Φ*` BOMP's QR sees), draws a random `r ∈ span(Φ*)` and
/// checks `‖Φ*ᵀr‖₂ ≥ 0.5‖r‖₂`. This replaces the synthetic
/// weakly-dependent ensemble of [`verify_conjecture1`] with the concrete
/// backend under test, so the near-isometry claim is validated per backend
/// rather than for idealized Gaussians only.
pub fn verify_conjecture1_op(
    op: &MeasurementOperator,
    s: usize,
    trials: usize,
    seed: u64,
) -> Result<TrialStats, LinalgError> {
    if s == 0 || s >= op.n() {
        return Err(LinalgError::InvalidParameter { name: "s", message: "need 0 < s < n".into() });
    }
    let m = op.m();
    let bias = Vector::from_vec(op.bias_column());
    let mut successes = 0;
    let mut min_margin = f64::INFINITY;
    let mut col = vec![0.0; m];
    for t in 0..trials {
        let picked = sample_columns(op, s, seed.wrapping_add(t as u64));
        let mut cols: Vec<Vector> = Vec::with_capacity(s + 1);
        cols.push(bias.clone());
        for &j in &picked {
            op.column_into(j, &mut col);
            cols.push(Vector::from_vec(col.clone()));
        }
        let phi_star = ColMatrix::from_columns(&cols).expect("non-empty ensemble");
        let mut g = GaussianSampler::new(stream_rng(seed ^ 0xABCD, t as u64));
        let mut coeffs = vec![0.0; s + 1];
        g.fill(&mut coeffs, 1.0);
        let r = phi_star.matvec(&Vector::from_vec(coeffs))?;
        let rn = r.norm2();
        if rn == 0.0 {
            continue;
        }
        let lhs = phi_star.matvec_transpose(&r)?.norm2();
        let margin = lhs / (0.5 * rn);
        min_margin = min_margin.min(margin);
        if margin >= 1.0 {
            successes += 1;
        }
    }
    Ok(TrialStats { trials, successes, min_margin })
}

/// Conjecture 2 over an actual measurement operator: each trial samples
/// two distinct columns `φ_j, φ_j'`, normalizes the second, and checks
/// `|⟨φ_j, φ_j'/‖φ_j'‖⟩| ≤ ε` — pairwise near-independence of the concrete
/// backend's columns, the property OMP's greedy argmax relies on.
pub fn verify_conjecture2_op(
    op: &MeasurementOperator,
    epsilon: f64,
    trials: usize,
    seed: u64,
) -> Result<TrialStats, LinalgError> {
    if epsilon <= 0.0 {
        return Err(LinalgError::InvalidParameter {
            name: "epsilon",
            message: "must be positive".into(),
        });
    }
    if op.n() < 2 {
        return Err(LinalgError::InvalidParameter {
            name: "n",
            message: "need at least two columns".into(),
        });
    }
    let m = op.m();
    let mut successes = 0;
    let mut min_margin = f64::INFINITY;
    let mut x = vec![0.0; m];
    let mut y = vec![0.0; m];
    for t in 0..trials {
        let picked = sample_columns(op, 2, seed.wrapping_add(t as u64));
        op.column_into(picked[0], &mut x);
        op.column_into(picked[1], &mut y);
        let yn = cso_linalg::vector::norm2(&y);
        if yn == 0.0 {
            continue;
        }
        let ip = cso_linalg::vector::dot(&x, &y).abs() / yn;
        let margin = epsilon / ip.max(f64::MIN_POSITIVE);
        min_margin = min_margin.min(margin);
        if ip <= epsilon {
            successes += 1;
        }
    }
    Ok(TrialStats { trials, successes, min_margin })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conjecture1_holds_at_paper_scales() {
        // Paper: "When M and s are larger than 10 … always holds by a large
        // margin."
        let stats = verify_conjecture1(64, 16, 1.0 / 4.0, 200, 42).unwrap();
        assert_eq!(stats.successes, stats.trials, "margin = {}", stats.min_margin);
        assert!(stats.min_margin > 1.2, "expected large margin, got {}", stats.min_margin);
    }

    #[test]
    fn conjecture1_holds_at_maximal_dependence() {
        // ζ at its largest value 1/√s.
        let s = 9;
        let zeta = 1.0 / (s as f64).sqrt();
        let stats = verify_conjecture1(48, s, zeta, 200, 7).unwrap();
        assert_eq!(stats.successes, stats.trials);
    }

    #[test]
    fn conjecture1_rejects_degenerate_inputs() {
        assert!(verify_conjecture1(0, 5, 0.1, 1, 1).is_err());
        assert!(verify_conjecture1(5, 0, 0.1, 1, 1).is_err());
    }

    #[test]
    fn conjecture2_success_rate_beats_bound() {
        let m = 100;
        let eps = 0.3;
        let zeta = 1.0 / 1000.0; // ζ = 1/√N with N = 10⁶
        let stats = verify_conjecture2(m, zeta, eps, 2000, 11).unwrap();
        let bound = conjecture2_bound(m, eps, 1.1);
        assert!(stats.success_rate() >= bound, "rate {} < bound {bound}", stats.success_rate());
    }

    #[test]
    fn conjecture2_bound_monotone_in_m_and_eps() {
        assert!(conjecture2_bound(200, 0.3, 1.1) > conjecture2_bound(100, 0.3, 1.1));
        assert!(conjecture2_bound(100, 0.4, 1.1) > conjecture2_bound(100, 0.3, 1.1));
    }

    #[test]
    fn conjecture2_rejects_degenerate_inputs() {
        assert!(verify_conjecture2(0, 0.1, 0.3, 1, 1).is_err());
        assert!(verify_conjecture2(10, 0.1, 0.0, 1, 1).is_err());
    }

    #[test]
    fn dependent_ensemble_has_designed_correlation() {
        // Column 0 should correlate with each other column at roughly ζ per
        // entry; estimate over a large matrix.
        let m = 20_000;
        let s = 2;
        let zeta = 0.5;
        let e = dependent_ensemble(m, s, zeta, 99);
        let c0 = e.col(0);
        for j in 1..=s {
            let cj = e.col(j);
            let cov: f64 = c0.iter().zip(cj).map(|(a, b)| a * b).sum::<f64>() / m as f64;
            // Expected per-entry covariance: ζ·var = ζ/M.
            let expected = zeta / m as f64;
            assert!(
                (cov - expected).abs() < 5.0 / (m as f64),
                "cov = {cov}, expected ≈ {expected}"
            );
        }
        // Entries of column 0 still have variance ≈ 1/M.
        let var: f64 = c0.iter().map(|v| v * v).sum::<f64>() / m as f64;
        assert!((var - 1.0 / m as f64).abs() < 0.3 / m as f64, "var = {var}");
    }

    fn op_backends(m: usize, n: usize, s: usize) -> Vec<MeasurementOperator> {
        vec![
            MeasurementOperator::dense(m, n, 77).unwrap(),
            MeasurementOperator::srht(m, n, 77).unwrap(),
            MeasurementOperator::seeded_sparse(m, n, 77, s).unwrap(),
        ]
    }

    #[test]
    fn conjecture1_holds_on_every_operator_backend() {
        for op in op_backends(64, 4096, 8) {
            let stats = verify_conjecture1_op(&op, 16, 100, 5).unwrap();
            assert_eq!(
                stats.successes,
                stats.trials,
                "{:?}: margin = {}",
                op.kind(),
                stats.min_margin
            );
            assert!(stats.min_margin > 1.0, "{:?}: {}", op.kind(), stats.min_margin);
        }
    }

    #[test]
    fn conjecture2_beats_bound_on_every_operator_backend() {
        // m = 100 / ε = 0.3 is the regime the synthetic test uses: the
        // bound leaves ~14 allowed failures in 2000 trials, well clear of
        // Monte-Carlo noise. The sparse backend needs s large enough that
        // its collision tail (governed by s, not m) stays sub-Gaussian at
        // this ε — s = 32 gives ≈3 expected failures (see DESIGN.md §13).
        let eps = 0.3;
        for op in op_backends(100, 4096, 32) {
            let stats = verify_conjecture2_op(&op, eps, 2000, 9).unwrap();
            let bound = conjecture2_bound(100, eps, 1.1);
            assert!(
                stats.success_rate() >= bound,
                "{:?}: rate {} < bound {bound}",
                op.kind(),
                stats.success_rate()
            );
        }
    }

    #[test]
    fn operator_verifiers_reject_degenerate_inputs() {
        let op = MeasurementOperator::dense(8, 32, 1).unwrap();
        assert!(verify_conjecture1_op(&op, 0, 1, 1).is_err());
        assert!(verify_conjecture1_op(&op, 32, 1, 1).is_err());
        assert!(verify_conjecture2_op(&op, 0.0, 1, 1).is_err());
    }

    #[test]
    fn trial_stats_success_rate() {
        let s = TrialStats { trials: 4, successes: 3, min_margin: 1.5 };
        assert_eq!(s.success_rate(), 0.75);
        let empty = TrialStats { trials: 0, successes: 0, min_margin: f64::INFINITY };
        assert_eq!(empty.success_rate(), 0.0);
    }

    #[test]
    fn span_membership_sanity() {
        use cso_linalg::IncrementalQr;
        // r built from the ensemble columns is in their span: projecting
        // onto a QR of the columns reproduces it.
        let e = dependent_ensemble(32, 4, 0.3, 3);
        let mut qr = IncrementalQr::new(32);
        for j in 0..e.cols() {
            qr.push_column(e.col(j)).unwrap();
        }
        let mut g = GaussianSampler::new(stream_rng(5, 0));
        let mut coeffs = vec![0.0; 5];
        g.fill(&mut coeffs, 1.0);
        let r = e.matvec(&Vector::from_vec(coeffs)).unwrap();
        let resid = qr.residual(r.as_slice()).unwrap();
        assert!(resid.norm2() < 1e-10 * r.norm2().max(1.0));
    }
}
