//! Wire-hardening property tests (PR 5 satellite).
//!
//! The serving layer feeds [`wire::decode`] bytes straight off a TCP
//! socket, so the decoder's contract must hold for *arbitrary* input, not
//! just what our own encoder produces: every corruption path — truncation,
//! oversizing, bit flips, wrong version — returns a typed [`WireError`]
//! and never panics or fabricates a message, and every [`Message`] variant
//! (simulation plane and serve control plane alike) round-trips bit-
//! exactly through encode→decode.

use cso_distributed::quantize::{self, SketchEncoding};
use cso_distributed::wire::{self, Message, WireError, CHECKSUM_BYTES};
use cso_linalg::Vector;
use cso_obs::MetricsRegistry;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// An arbitrary telemetry snapshot, built by driving a real registry so
/// every histogram is internally consistent (the decoder's own bounds
/// checks are exercised separately by the hand-built-frame unit tests).
fn arb_metrics_reply() -> impl Strategy<Value = Message> {
    (
        prop::collection::vec((0u8..4, 0u64..(1u64 << 40)), 0..12),
        prop::collection::vec((0u8..4, -1e9f64..1e9), 0..12),
        prop::collection::vec((0u8..4, 0u64..u64::MAX), 0..40),
    )
        .prop_map(|(counters, gauges, observations)| {
            let reg = MetricsRegistry::new();
            for (n, v) in counters {
                reg.counter_add(&format!("c.{n}"), v);
            }
            for (n, v) in gauges {
                reg.gauge_set(&format!("g.{n}"), v);
            }
            for (n, v) in observations {
                reg.histogram_record(&format!("h.{n}"), v);
            }
            Message::MetricsReply { snapshot: reg.snapshot() }
        })
}

/// A strategy over every `Message` variant, exercising all three sketch
/// encodings and both empty and populated list payloads.
fn arb_message() -> impl Strategy<Value = Message> {
    let values = || prop::collection::vec(-1e12f64..1e12, 0..48);
    prop_oneof![
        (0u32..1000, 0u64..u64::MAX, values(), 0u8..3).prop_map(|(node, seed, vals, enc)| {
            let encoding = match enc {
                0 => SketchEncoding::F64,
                1 => SketchEncoding::F32,
                _ => SketchEncoding::Fixed16,
            };
            let payload = quantize::encode(&Vector::from_vec(vals), encoding);
            Message::Sketch { node, seed, payload }
        }),
        (0u32..1000, prop::collection::vec((0u32..1_000_000, -1e12f64..1e12), 0..40))
            .prop_map(|(node, pairs)| Message::KvBatch { node, pairs }),
        (-1e15f64..1e15).prop_map(|mode| Message::ModeBroadcast { mode }),
        (
            (0u64..u64::MAX, 0u64..1000, 0u32..100_000, 0u64..u64::MAX, 0u64..u64::MAX),
            0u8..4,
            0u64..64
        )
            .prop_map(|((session, epoch, m, n, seed), op_kind, op_param)| {
                Message::OpenEpoch { session, epoch, m, n, seed, op_kind, op_param }
            }),
        (0u64..u64::MAX, 0u64..1000)
            .prop_map(|(session, epoch)| Message::SealEpoch { session, epoch }),
        (0u64..u64::MAX, 0u64..1000)
            .prop_map(|(session, epoch)| Message::EpochStatus { session, epoch }),
        (
            (0u64..u64::MAX, 0u64..1000),
            (0u32..4096, 0u64..u64::MAX, 0u64..u64::MAX, 0u64..1u64 << 40)
        )
            .prop_map(|((session, epoch), (region, leaf_lo, leaf_hi, fan_in))| {
                Message::RelayManifest { session, epoch, region, leaf_lo, leaf_hi, fan_in }
            }),
        (0u64..1000, 0u8..4, 0u64..u64::MAX).prop_map(|(epoch, phase, nodes)| Message::Status {
            epoch,
            phase,
            nodes
        }),
        (0u64..u64::MAX, 0u64..1000, 0u32..10_000)
            .prop_map(|(session, epoch, k)| Message::RecoverEpoch { session, epoch, k }),
        (0u8..255, 0u64..u64::MAX).prop_map(|(of, info)| Message::Ack { of, info }),
        (0u16..u16::MAX, 0u32..120_000)
            .prop_map(|(code, retry_after_ms)| Message::Reject { code, retry_after_ms }),
        (
            0u64..1000,
            -1e15f64..1e15,
            prop::collection::vec((0u32..u32::MAX, -1e12f64..1e12), 0..32)
        )
            .prop_map(|(epoch, mode, outliers)| Message::Report { epoch, mode, outliers }),
        Just(Message::Introspect),
        arb_metrics_reply(),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every variant — simulation and control plane — survives an
    /// encode→decode round trip bit-exactly.
    #[test]
    fn every_variant_round_trips(msg in arb_message()) {
        let buf = wire::encode(&msg);
        prop_assert_eq!(wire::decode(&buf).unwrap(), msg);
    }

    /// Every strict prefix of a frame is rejected with a typed error —
    /// `Truncated` below the minimum frame size, `ChecksumMismatch`
    /// otherwise (the trailer no longer covers the remaining body).
    #[test]
    fn truncation_yields_typed_errors(msg in arb_message(), cut_fraction in 0.0f64..1.0) {
        let buf = wire::encode(&msg);
        let cut = ((buf.len() - 1) as f64 * cut_fraction) as usize;
        let err = wire::decode(&buf[..cut]).unwrap_err();
        if cut < 2 + CHECKSUM_BYTES {
            prop_assert_eq!(err, WireError::Truncated);
        } else {
            prop_assert!(matches!(err, WireError::ChecksumMismatch { .. }), "cut {cut}: {err:?}");
        }
    }

    /// An oversized frame — a valid frame with trailing bytes appended —
    /// is rejected: the checksum catches arbitrary suffixes, and even a
    /// deliberately re-sealed oversized frame is refused as `Truncated`
    /// framing garbage, never silently accepted.
    #[test]
    fn oversized_frames_rejected(msg in arb_message(), extra in prop::collection::vec(0u8..=255, 1..64)) {
        let mut buf = wire::encode(&msg);
        let clean = buf.clone();
        buf.extend_from_slice(&extra);
        prop_assert!(wire::decode(&buf).is_err());
        // Re-seal: recompute the CRC over the padded body so the corruption
        // reaches the parser itself.
        let body_len = buf.len() - CHECKSUM_BYTES;
        let sum = wire::crc32(&buf[..body_len]);
        buf.truncate(body_len);
        buf.extend_from_slice(&sum.to_le_bytes());
        match wire::decode(&buf) {
            // Appending bytes may legitimately extend a length-prefixed
            // list; anything else must be a typed rejection, and the exact
            // original frame still decodes.
            Ok(_) | Err(_) => {}
        }
        prop_assert_eq!(wire::decode(&clean).unwrap(), msg);
    }

    /// Any single flipped bit anywhere in a frame is caught by the CRC.
    #[test]
    fn bit_flips_never_yield_a_message(msg in arb_message(), pick in 0u64..u64::MAX) {
        let buf = wire::encode(&msg);
        let bit = (pick % (buf.len() as u64 * 8)) as usize;
        let mut bad = buf.clone();
        bad[bit / 8] ^= 1 << (bit % 8);
        let err = wire::decode(&bad).unwrap_err();
        prop_assert!(
            matches!(err, WireError::ChecksumMismatch { .. }),
            "flip at bit {bit} produced {err:?}"
        );
    }

    /// A frame whose version byte differs from `WIRE_VERSION` is rejected
    /// as `VersionMismatch` for every variant (after re-sealing, so the
    /// version check itself — not the CRC — does the rejecting).
    #[test]
    fn wrong_version_rejected_for_every_variant(msg in arb_message(), version in 0u8..=255) {
        prop_assume!(version != wire::WIRE_VERSION);
        let mut buf = wire::encode(&msg);
        buf[1] = version;
        let body_len = buf.len() - CHECKSUM_BYTES;
        let sum = wire::crc32(&buf[..body_len]);
        buf.truncate(body_len);
        buf.extend_from_slice(&sum.to_le_bytes());
        prop_assert_eq!(
            wire::decode(&buf).unwrap_err(),
            WireError::VersionMismatch { got: version, want: wire::WIRE_VERSION }
        );
    }

    /// `decode` is total over arbitrary byte soup: random buffers never
    /// panic and essentially always fail with a typed error.
    #[test]
    fn random_bytes_never_panic(seed in 0u64..u64::MAX, len in 0usize..512) {
        let mut rng = StdRng::seed_from_u64(seed);
        let buf: Vec<u8> = (0..len).map(|_| rng.gen_range(0..=255u8) ).collect();
        let _ = wire::decode(&buf); // must return, not panic
    }
}
