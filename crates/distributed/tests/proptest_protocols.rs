//! Property-based tests of the distributed substrate: wire round-trips,
//! quantization error bounds, cost arithmetic, and baseline agreement.

use cso_distributed::quantize::{self, SketchEncoding};
use cso_distributed::wire::{self, Message};
use cso_distributed::{
    all_vectorized_cost, cs_cost, Cluster, CostMeter, Offer, SketchCollector, TaProtocol,
    TputProtocol,
};
use cso_linalg::Vector;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Every message survives an encode/decode round trip bit-exactly.
    #[test]
    fn wire_round_trip_kv(
        node in 0u32..1000,
        pairs in prop::collection::vec((0u32..1_000_000, -1e12f64..1e12), 0..50),
    ) {
        let msg = Message::KvBatch { node, pairs };
        prop_assert_eq!(wire::decode(&wire::encode(&msg)).unwrap(), msg);
    }

    #[test]
    fn wire_round_trip_sketch(
        node in 0u32..100,
        seed in 0u64..u64::MAX,
        values in prop::collection::vec(-1e9f64..1e9, 1..64),
        enc in 0u8..3,
    ) {
        let encoding = match enc {
            0 => SketchEncoding::F64,
            1 => SketchEncoding::F32,
            _ => SketchEncoding::Fixed16,
        };
        let payload = quantize::encode(&Vector::from_vec(values), encoding);
        let msg = Message::Sketch { node, seed, payload };
        prop_assert_eq!(wire::decode(&wire::encode(&msg)).unwrap(), msg);
    }

    /// Any strict prefix of an encoded message fails to decode (no partial
    /// reads are ever misinterpreted as complete messages).
    #[test]
    fn wire_prefixes_never_decode(
        values in prop::collection::vec(-1e6f64..1e6, 1..16),
        cut_fraction in 0.0f64..1.0,
    ) {
        let msg = Message::Sketch {
            node: 1,
            seed: 2,
            payload: quantize::encode(&Vector::from_vec(values), SketchEncoding::F64),
        };
        let buf = wire::encode(&msg);
        let cut = ((buf.len() - 1) as f64 * cut_fraction) as usize;
        prop_assert!(wire::decode(&buf[..cut]).is_err());
    }

    /// Quantization error respects the documented per-encoding bound.
    #[test]
    fn quantization_error_bounded(
        values in prop::collection::vec(-1e7f64..1e7, 1..64),
        enc in 0u8..3,
    ) {
        let encoding = match enc {
            0 => SketchEncoding::F64,
            1 => SketchEncoding::F32,
            _ => SketchEncoding::Fixed16,
        };
        let y = Vector::from_vec(values);
        let (back, bits) = quantize::transmit(&y, encoding).unwrap();
        prop_assert_eq!(bits, encoding.payload_bits(y.len()));
        let bound = quantize::relative_error_bound(encoding) * y.norm_inf();
        let err = back.sub(&y).unwrap().norm_inf();
        // F32 bound is relative per-value; allow 2 ulps of slack.
        prop_assert!(err <= bound * 2.0 + 1e-30, "err {err} > bound {bound}");
    }

    /// Cost meter totals equal the sum of the parts, and CS-vs-ALL
    /// normalization equals M/N for any shapes.
    #[test]
    fn cost_arithmetic(
        l in 1usize..20,
        n in 1usize..10_000,
        m in 1usize..2_000,
        values in 0u64..1000,
        pairs in 0u64..1000,
    ) {
        let mut meter = CostMeter::new(l);
        meter.record_values(0, values);
        meter.record_kv_pairs(l - 1, pairs);
        let c = meter.finish();
        prop_assert_eq!(c.bits, values * 64 + pairs * 96);
        prop_assert_eq!(c.tuples, values + pairs);

        let all = all_vectorized_cost(l, n);
        let cs = cs_cost(l, m);
        let expect = m as f64 / n as f64;
        prop_assert!((cs.normalized_to(&all) - expect).abs() < 1e-12);
    }

    /// The aggregator's partial sum is invariant (up to floating-point
    /// reassociation) under any permutation of arriving sketches, and
    /// offering duplicates is exactly idempotent: the sum is bit-for-bit
    /// unchanged and each duplicate is reported as such.
    #[test]
    fn collector_permutation_invariant_and_duplicate_idempotent(
        sketches in prop::collection::vec(prop::collection::vec(-1e6f64..1e6, 6..7), 1..8),
        perm_seed in 0u64..u64::MAX,
        dup_picks in prop::collection::vec(0usize..64, 0..12),
    ) {
        let m = 6;
        let seed = 42u64;

        // Arrival order A: node id order.
        let mut in_order = SketchCollector::new(m);
        for (node, s) in sketches.iter().enumerate() {
            let r = in_order.offer(node as u32, seed, &Vector::from_vec(s.clone())).unwrap();
            prop_assert_eq!(r, Offer::Accepted);
        }

        // Arrival order B: a random permutation of the same sketches.
        let mut order: Vec<usize> = (0..sketches.len()).collect();
        order.shuffle(&mut StdRng::seed_from_u64(perm_seed));
        let mut permuted = SketchCollector::new(m);
        for &node in &order {
            permuted
                .offer(node as u32, seed, &Vector::from_vec(sketches[node].clone()))
                .unwrap();
        }
        prop_assert_eq!(in_order.nodes(), permuted.nodes());
        for (a, b) in in_order.sum().as_slice().iter().zip(permuted.sum().as_slice()) {
            // Summation order differs, so allow reassociation slack only.
            prop_assert!((a - b).abs() <= 1e-9 * a.abs().max(1.0), "{a} vs {b}");
        }

        // Replaying any sketches (retransmits / network duplicates) must
        // leave the aggregate bit-for-bit untouched.
        let snapshot = permuted.sum().as_slice().to_vec();
        for &pick in &dup_picks {
            let node = pick % sketches.len();
            let r = permuted
                .offer(node as u32, seed, &Vector::from_vec(sketches[node].clone()))
                .unwrap();
            prop_assert_eq!(r, Offer::Duplicate);
        }
        prop_assert_eq!(permuted.sum().as_slice(), snapshot.as_slice());
        prop_assert_eq!(permuted.duplicates_ignored(), dup_picks.len() as u64);
        prop_assert_eq!(permuted.len(), sketches.len());
    }

    /// TA and TPUT agree with the exact aggregate top-k on random
    /// non-negative clusters (distinct values).
    #[test]
    fn ta_tput_exactness(
        base in prop::collection::vec(0.0f64..1000.0, 8..40),
        l in 1usize..4,
        k in 1usize..4,
    ) {
        // Make values distinct to keep ordering unambiguous.
        let x: Vec<f64> = base
            .iter()
            .enumerate()
            .map(|(i, v)| v + i as f64 * 1e-6)
            .collect();
        let slices = cso_workloads::split(
            &x,
            l,
            cso_workloads::SliceStrategy::RandomProportions,
            7,
        )
        .unwrap();
        // Floating-point remainder fixing can produce −ε values; TA/TPUT
        // require exact non-negativity.
        prop_assume!(slices.iter().all(|s| s.iter().all(|&v| v >= 0.0)));
        let cluster = Cluster::new(slices).unwrap();
        let k = k.min(x.len());

        let mut expect: Vec<usize> = (0..x.len()).collect();
        expect.sort_by(|&a, &b| x[b].partial_cmp(&x[a]).unwrap().then(a.cmp(&b)));
        expect.truncate(k);

        let ta: Vec<usize> = TaProtocol
            .run_topk(&cluster, k)
            .unwrap()
            .topk
            .iter()
            .map(|o| o.index)
            .collect();
        let tput: Vec<usize> = TputProtocol
            .run_topk(&cluster, k)
            .unwrap()
            .topk
            .iter()
            .map(|o| o.index)
            .collect();
        prop_assert_eq!(&ta, &expect);
        prop_assert_eq!(&tput, &expect);
    }
}
