//! Property-based determinism tests for the parallel execution engine:
//! for arbitrary clusters and fault schedules, the CS protocol must
//! produce **bit-identical** results (outlier indices, value bits, mode
//! bits, cost, survivors) at every worker count. This is the contract
//! DESIGN.md §8 documents — parallelism changes scheduling, never output.

use cso_distributed::quantize::SketchEncoding;
use cso_distributed::{Cluster, CsProtocol, FaultPlan, OutlierProtocol, ProtocolRun, RetryPolicy};
use cso_exec::ExecConfig;
use cso_obs::Recorder;
use proptest::prelude::*;

/// Worker counts exercised against the sequential reference: the pinned
/// reference itself, a pair (max contention on this pool), and an
/// oversubscribed count.
const WORKER_COUNTS: [usize; 3] = [1, 2, 8];

fn cluster_from(slices: Vec<Vec<f64>>) -> Cluster {
    Cluster::new(slices).expect("proptest generates non-empty equal-length slices")
}

fn assert_bit_identical(a: &ProtocolRun, b: &ProtocolRun) -> Result<(), TestCaseError> {
    prop_assert_eq!(a.cost, b.cost);
    prop_assert_eq!(a.mode.to_bits(), b.mode.to_bits());
    prop_assert_eq!(a.estimate.len(), b.estimate.len());
    for (x, y) in a.estimate.iter().zip(&b.estimate) {
        prop_assert_eq!(x.index, y.index);
        prop_assert_eq!(x.value.to_bits(), y.value.to_bits());
    }
    Ok(())
}

/// Slices: `l ∈ 2..6` nodes over `n = 48` keys, values in a range wide
/// enough that float summation order would show up in the low bits if the
/// engine ever reassociated the sketch sum.
fn slices_strategy() -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(prop::collection::vec(-1e6f64..1e6, 48..49), 2..6)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `run` and `run_traced` are bit-identical across worker counts, and
    /// tracing never perturbs the computation.
    #[test]
    fn run_and_run_traced_identical_across_worker_counts(
        slices in slices_strategy(),
        m in 24usize..40,
        seed in 0u64..1000,
        k in 1usize..5,
    ) {
        let cluster = cluster_from(slices);
        let base = CsProtocol::new(m, seed);
        let reference =
            base.clone().with_exec(ExecConfig::sequential()).run(&cluster, k).unwrap();
        for workers in WORKER_COUNTS {
            let proto = base.clone().with_exec(ExecConfig::with_workers(workers));
            let run = proto.run(&cluster, k).unwrap();
            assert_bit_identical(&run, &reference)?;
            let rec = Recorder::new();
            let traced = proto.run_traced(&cluster, k, &rec).unwrap();
            assert_bit_identical(&traced, &reference)?;
        }
    }

    /// Degraded (fault-injected) runs are bit-identical across worker
    /// counts: survivors, retransmissions, elapsed virtual time, cost, and
    /// the recovered estimate all match the sequential reference.
    #[test]
    fn degraded_runs_identical_across_worker_counts(
        slices in slices_strategy(),
        m in 24usize..40,
        seed in 0u64..1000,
        fault_seed in 0u64..1000,
        drop_pct in 0u32..40,
    ) {
        let cluster = cluster_from(slices);
        let plan = FaultPlan::new(fault_seed)
            .drop_rate(f64::from(drop_pct) / 100.0)
            .corrupt_rate(0.05);
        let policy = RetryPolicy::default().with_max_attempts(4);
        let base = CsProtocol::new(m, seed);
        let reference = base
            .clone()
            .with_exec(ExecConfig::sequential())
            .run_degraded(&cluster, 3, SketchEncoding::F64, &plan, &policy);
        for workers in WORKER_COUNTS {
            let run = base
                .clone()
                .with_exec(ExecConfig::with_workers(workers))
                .run_degraded(&cluster, 3, SketchEncoding::F64, &plan, &policy);
            match (&reference, &run) {
                (Ok(a), Ok(b)) => {
                    assert_bit_identical(&a.run, &b.run)?;
                    prop_assert_eq!(&a.surviving_nodes, &b.surviving_nodes);
                    prop_assert_eq!(&a.dropped_nodes, &b.dropped_nodes);
                    prop_assert_eq!(a.retransmissions, b.retransmissions);
                    prop_assert_eq!(a.elapsed_ticks, b.elapsed_ticks);
                    prop_assert_eq!(a.fault_stats, b.fault_stats);
                }
                (Err(_), Err(_)) => {}
                _ => prop_assert!(false, "parallel and sequential disagree on success"),
            }
        }
    }

}
