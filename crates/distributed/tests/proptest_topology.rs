//! Topology/fold composition property tests (PR 10 satellite).
//!
//! The relay tier's bit-identity rests on two algebraic facts about the
//! canonical dyadic fold ([`cso_distributed::fold`]) and the aligned
//! region blocks [`TopologySpec`] hands out:
//!
//! 1. **Composition**: folding per-region pre-sums over region-id space
//!    equals folding all leaves over leaf-id space, bit for bit;
//! 2. **Degradation**: dropping whole regions before the root fold equals
//!    dropping those regions' leaves before the flat fold, bit for bit.
//!
//! These are proven here for arbitrary leaf counts, power-of-two fan-ins
//! and random sketch values — not just the fixed shapes the unit tests
//! pin — plus the [`TopologySpec`] bookkeeping invariants they rely on.

use cso_distributed::{dyadic_fold, TopologySpec};
use cso_linalg::Vector;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const M: usize = 24;

fn sketches(leaves: u64, seed: u64) -> Vec<Vector> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..leaves)
        .map(|_| Vector::from_vec((0..M).map(|_| rng.gen_range(-1e6..1e6)).collect()))
        .collect()
}

/// Pre-sums one region's leaves at their absolute ids.
fn region_presum(topo: &TopologySpec, region: u64, leaves: &[Vector]) -> Vector {
    let (lo, hi) = topo.leaf_range(region).unwrap();
    let members: Vec<(usize, &Vector)> =
        (lo..hi).map(|l| (l as usize, &leaves[l as usize])).collect();
    dyadic_fold(M, &members)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Region pre-sums compose to the flat fold bit-identically for any
    /// leaf count and any power-of-two fan-in, including partial tail
    /// regions.
    #[test]
    fn presums_compose_bit_identically(
        leaves in 1u64..48,
        fan_in_log in 0u32..5,
        seed in 0u64..u64::MAX,
    ) {
        let fan_in = 1u64 << fan_in_log;
        prop_assume!(fan_in <= leaves);
        let topo = TopologySpec::new(leaves, fan_in).unwrap();
        let xs = sketches(leaves, seed);

        let flat_members: Vec<(usize, &Vector)> =
            xs.iter().enumerate().collect();
        let flat = dyadic_fold(M, &flat_members);

        let presums: Vec<(u64, Vector)> = (0..topo.region_count())
            .map(|g| (g, region_presum(&topo, g, &xs)))
            .collect();
        let root_members: Vec<(usize, &Vector)> =
            presums.iter().map(|(g, y)| (*g as usize, y)).collect();
        let root = dyadic_fold(M, &root_members);

        for (a, b) in flat.as_slice().iter().zip(root.as_slice()) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    /// Dropping an arbitrary subset of regions at the root equals
    /// dropping their leaf blocks from the flat fold, bit for bit —
    /// subtree-granular degraded recovery is exact.
    #[test]
    fn region_drop_equals_leaf_block_drop(
        leaves in 1u64..48,
        fan_in_log in 0u32..5,
        drop_mask in 0u64..u64::MAX,
        seed in 0u64..u64::MAX,
    ) {
        let fan_in = 1u64 << fan_in_log;
        prop_assume!(fan_in <= leaves);
        let topo = TopologySpec::new(leaves, fan_in).unwrap();
        let xs = sketches(leaves, seed);
        let survives = |g: u64| drop_mask & (1 << (g % 64)) == 0;

        let flat_members: Vec<(usize, &Vector)> = xs
            .iter()
            .enumerate()
            .filter(|(l, _)| survives(topo.region_of(*l as u64).unwrap()))
            .collect();
        let flat = dyadic_fold(M, &flat_members);

        let presums: Vec<(u64, Vector)> = (0..topo.region_count())
            .filter(|&g| survives(g))
            .map(|g| (g, region_presum(&topo, g, &xs)))
            .collect();
        let root_members: Vec<(usize, &Vector)> =
            presums.iter().map(|(g, y)| (*g as usize, y)).collect();
        let root = dyadic_fold(M, &root_members);

        for (a, b) in flat.as_slice().iter().zip(root.as_slice()) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    /// `TopologySpec` bookkeeping: every leaf belongs to exactly the
    /// region whose range contains it, ranges tile `[0, leaves)` without
    /// gaps or overlap, and only the tail region may be short.
    #[test]
    fn topology_ranges_tile_the_leaf_space(
        leaves in 1u64..256,
        fan_in_log in 0u32..7,
    ) {
        let fan_in = 1u64 << fan_in_log;
        prop_assume!(fan_in <= leaves);
        let topo = TopologySpec::new(leaves, fan_in).unwrap();
        let regions = topo.region_count();
        prop_assert_eq!(regions, leaves.div_ceil(fan_in));

        let mut next = 0u64;
        for g in 0..regions {
            let (lo, hi) = topo.leaf_range(g).unwrap();
            prop_assert_eq!(lo, next, "gap or overlap at region {}", g);
            prop_assert_eq!(lo, g * fan_in, "misaligned region {}", g);
            prop_assert!(hi - lo <= fan_in);
            if g + 1 < regions {
                prop_assert_eq!(hi - lo, fan_in, "short non-tail region {}", g);
            }
            for l in lo..hi {
                prop_assert_eq!(topo.region_of(l), Some(g));
            }
            next = hi;
        }
        prop_assert_eq!(next, leaves, "ranges must cover every leaf");
        prop_assert_eq!(topo.leaf_range(regions), None);
        prop_assert_eq!(topo.region_of(leaves), None);
    }
}
