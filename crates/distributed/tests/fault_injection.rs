//! Heavier fault-injection sweeps, gated behind the `fault-injection`
//! feature so the default test run stays fast:
//!
//! ```text
//! cargo test -q -p cso-distributed --features fault-injection
//! ```
//!
//! These sweep drop/corruption rates and many seeds, checking the
//! degraded-mode invariants hold everywhere: recovery always equals the
//! clean protocol on the surviving subset, corrupt frames never decode,
//! and every transmitted byte is accounted for.

#![cfg(feature = "fault-injection")]

use cso_core::BompConfig;
use cso_distributed::{
    Cluster, CsProtocol, FaultPlan, OutlierProtocol, RetryPolicy, SketchEncoding,
};
use cso_workloads::{split, MajorityConfig, MajorityData, SliceStrategy};

fn cluster_of(l: usize, seed: u64) -> Cluster {
    let data =
        MajorityData::generate(&MajorityConfig { n: 300, s: 6, ..MajorityConfig::default() }, seed)
            .unwrap();
    let slices = split(&data.values, l, SliceStrategy::RandomProportions, seed + 1).unwrap();
    Cluster::new(slices).unwrap()
}

fn proto() -> CsProtocol {
    CsProtocol::new(90, 7).with_recovery(BompConfig::for_k_outliers(6))
}

/// Across a grid of loss/corruption rates and seeds, a degraded run must be
/// *exactly* the clean protocol restricted to its surviving subset — faults
/// may shrink the subset, never distort the recovery.
#[test]
fn degraded_recovery_equals_clean_run_on_survivors_across_sweep() {
    let cluster = cluster_of(8, 11);
    let p = proto();
    let policy = RetryPolicy::default().with_timeout_ticks(10_000);
    for &drop in &[0.0, 0.1, 0.3, 0.5] {
        for &corrupt in &[0.0, 0.05, 0.2] {
            for plan_seed in 0..5u64 {
                let plan = FaultPlan::new(plan_seed).drop_rate(drop).corrupt_rate(corrupt);
                let Ok(deg) = p.run_degraded(&cluster, 6, SketchEncoding::F64, &plan, &policy)
                else {
                    // Legal only when nobody survived.
                    continue;
                };
                let surviving: Vec<Vec<f64>> =
                    deg.surviving_nodes.iter().map(|&l| cluster.slice(l).to_vec()).collect();
                let clean = p.run(&Cluster::new(surviving).unwrap(), 6).unwrap();
                assert_eq!(
                    deg.run.estimate, clean.estimate,
                    "drop {drop} corrupt {corrupt} seed {plan_seed}"
                );
                assert!((deg.run.mode - clean.mode).abs() < 1e-9);
                // Zero garbage decodes: every injected corruption was
                // rejected by the checksum.
                assert_eq!(deg.corrupt_rejected, deg.fault_stats.corrupted);
            }
        }
    }
}

/// Byte accounting is exact under every fault regime: cost equals frames
/// actually sent times the fixed frame size.
#[test]
fn every_transmitted_byte_is_charged() {
    let cluster = cluster_of(6, 3);
    let p = proto();
    let frame_bytes = (1 + 1 + 4 + 8 + 1 + 4 + 8 * p.m + 4) as u64;
    let policy = RetryPolicy::default().with_timeout_ticks(10_000);
    for plan_seed in 0..10u64 {
        let plan = FaultPlan::new(plan_seed).drop_rate(0.3).corrupt_rate(0.1).duplicate_rate(0.2);
        let Ok(deg) = p.run_degraded(&cluster, 6, SketchEncoding::F64, &plan, &policy) else {
            continue;
        };
        assert_eq!(
            deg.run.cost.bits,
            deg.fault_stats.attempts * frame_bytes * 8,
            "seed {plan_seed}"
        );
        assert_eq!(
            deg.fault_stats.attempts,
            cluster.l() as u64 + deg.retransmissions,
            "seed {plan_seed}"
        );
    }
}

/// More retries monotonically (weakly) improve survival under pure loss.
#[test]
fn retry_budget_improves_survival() {
    let cluster = cluster_of(8, 21);
    let p = proto();
    let plan = FaultPlan::new(9).drop_rate(0.5);
    let mut survivors_by_budget = Vec::new();
    for attempts in [1u32, 2, 4, 8] {
        let policy = RetryPolicy::default().with_max_attempts(attempts).with_timeout_ticks(100_000);
        let survived = match p.run_degraded(&cluster, 6, SketchEncoding::F64, &plan, &policy) {
            Ok(deg) => deg.surviving_nodes.len(),
            Err(_) => 0,
        };
        survivors_by_budget.push(survived);
    }
    assert!(
        survivors_by_budget.windows(2).all(|w| w[0] <= w[1]),
        "more attempts must never lose nodes: {survivors_by_budget:?}"
    );
    assert_eq!(
        *survivors_by_budget.last().unwrap(),
        cluster.l(),
        "8 attempts at 50% loss leaves survival gaps only with ~0.4% probability per node"
    );
}

/// Hard-failed nodes never survive, whatever the retry budget; surviving
/// fraction reports exactly the planned survivors.
#[test]
fn hard_failures_are_immune_to_retries() {
    let cluster = cluster_of(10, 5);
    let p = proto();
    let plan = FaultPlan::new(1).fail_nodes(&[0, 4, 9]);
    let policy = RetryPolicy::default().with_max_attempts(10).with_timeout_ticks(100_000);
    let deg = p.run_degraded(&cluster, 6, SketchEncoding::F64, &plan, &policy).unwrap();
    assert_eq!(deg.dropped_nodes, vec![0, 4, 9]);
    assert!((deg.surviving_fraction() - 0.7).abs() < 1e-12);
    assert_eq!(deg.retransmissions, 3 * 9, "each dead node exhausts its 9 retries");
}
