//! The compressive-sensing protocol (the paper's contribution, Figure 2).
//!
//! Single round: every node measures its slice with the shared matrix and
//! ships the `M`-length sketch; the aggregator sums the sketches
//! (`y = Σ Φ0·x_l = Φ0·x`, equation (1)) and recovers mode and outliers
//! with BOMP. Communication: `L·M` values, one round — logarithmic in `N`
//! when `M = O(s^a log N)` per Theorem 1.

use crate::cluster::Cluster;
use crate::cost::CostMeter;
use crate::protocol::{OutlierProtocol, ProtocolRun};
use cso_core::{
    bomp_with_matrix, bomp_with_matrix_traced, bomp_with_op, bomp_with_op_traced, BompConfig,
    BompResult, KeyValue, MeasurementOp, MeasurementOperator, MeasurementSpec, OpKind,
    SketchBackend,
};
use cso_exec::ExecConfig;
use cso_linalg::{ColMatrix, LinalgError, Vector};
use cso_obs::{Recorder, Value};

/// The CS-based outlier protocol.
#[derive(Debug, Clone)]
pub struct CsProtocol {
    /// Sketch length `M` every node transmits.
    pub m: usize,
    /// Shared seed all parties derive `Φ0` from.
    pub seed: u64,
    /// Recovery configuration. When `omp.max_iterations` is `usize::MAX`
    /// (the default), the protocol substitutes the paper's `R = f(k)`
    /// heuristic at run time.
    pub recovery: BompConfig,
    /// Execution configuration, threaded into both the node-side sketch
    /// builds (independent per node, run on the work-stealing pool when
    /// `exec.workers > 1`) and the aggregator's recovery scans
    /// (`recovery.omp.exec`; engaged only for dictionaries above
    /// `omp.par_min_work` elements). Results are bit-identical to the
    /// sequential reference for any worker count: each node's sketch
    /// `y_l = Φ0·x_l` is computed in isolation, sketches sum in node order
    /// on the calling thread, and recovery scans use fixed column blocks
    /// with an ordered reduction (DESIGN.md §9).
    pub exec: ExecConfig,
    /// Measurement-operator backend. [`SketchBackend::dense`] (the
    /// default) runs the seed repo's exact materialized path bit-for-bit;
    /// the matrix-free backends (`srht`, `seeded_sparse`) never form Φ0
    /// and drop the per-scan cost from `O(M·N)` to `O(Np·log Np)` /
    /// `O(N·s)` (DESIGN.md §13).
    pub backend: SketchBackend,
}

/// How one run measures and recovers: the dense backend keeps the legacy
/// materialized matrix (bit-identical to the seed repo), everything else
/// goes through the matrix-free [`MeasurementOperator`].
pub(crate) enum Engine {
    Dense(ColMatrix),
    Op(MeasurementOperator),
}

impl Engine {
    pub(crate) fn sketch(&self, slice: &[f64]) -> Result<Vector, LinalgError> {
        match self {
            Engine::Dense(phi0) => CsProtocol::sketch_slice(phi0, slice),
            Engine::Op(op) => op.apply(slice),
        }
    }

    pub(crate) fn recover_traced(
        &self,
        y: &Vector,
        recovery: &BompConfig,
        rec: &Recorder,
    ) -> Result<BompResult, LinalgError> {
        match self {
            Engine::Dense(phi0) => bomp_with_matrix_traced(phi0, y, recovery, rec),
            Engine::Op(op) => bomp_with_op_traced(op, y, recovery, rec),
        }
    }

    pub(crate) fn recover(
        &self,
        y: &Vector,
        recovery: &BompConfig,
    ) -> Result<BompResult, LinalgError> {
        match self {
            Engine::Dense(phi0) => bomp_with_matrix(phi0, y, recovery),
            Engine::Op(op) => bomp_with_op(op, y, recovery),
        }
    }
}

impl CsProtocol {
    /// Protocol with sketch size `m`, seed, and default recovery settings.
    /// Sketch builds use [`ExecConfig::auto`] (all available cores).
    pub fn new(m: usize, seed: u64) -> Self {
        CsProtocol {
            m,
            seed,
            recovery: BompConfig::default(),
            exec: ExecConfig::default(),
            backend: SketchBackend::dense(),
        }
    }

    /// Overrides the recovery configuration.
    pub fn with_recovery(mut self, recovery: BompConfig) -> Self {
        self.recovery = recovery;
        self
    }

    /// Overrides the execution configuration
    /// ([`ExecConfig::sequential`] pins the single-threaded reference path).
    pub fn with_exec(mut self, exec: ExecConfig) -> Self {
        self.exec = exec;
        self
    }

    /// Overrides the measurement-operator backend.
    pub fn with_backend(mut self, backend: SketchBackend) -> Self {
        self.backend = backend;
        self
    }

    /// The measurement engine for an `n`-key run: dense materializes the
    /// legacy Φ0 once (all parties regenerate the same matrix from the
    /// seed — bit-identical to per-node regeneration, see tests); the
    /// matrix-free backends validate and build the seeded operator.
    pub(crate) fn engine(&self, n: usize) -> Result<Engine, LinalgError> {
        match self.backend.kind {
            OpKind::Dense if self.backend.param == 0 => {
                Ok(Engine::Dense(MeasurementSpec::new(self.m, n, self.seed)?.materialize()))
            }
            _ => Ok(Engine::Op(self.backend.build(self.m, n, self.seed)?)),
        }
    }

    /// Builds all node sketches (`y_l = Φ0·x_l`) on the configured
    /// executor, returned in node order, recording `exec.*` stats into
    /// `rec` when the build actually ran multi-worker.
    fn build_sketches(
        &self,
        engine: &Engine,
        cluster: &Cluster,
        rec: &Recorder,
    ) -> Result<Vec<Vector>, LinalgError> {
        let nodes: Vec<usize> = (0..cluster.l()).collect();
        let (result, stats) =
            cso_exec::try_par_map(&self.exec, &nodes, |_, &l| engine.sketch(cluster.slice(l)));
        stats.record(rec);
        result
    }

    /// The effective iteration budget for a given `k`.
    pub(crate) fn budget_for(&self, k: usize) -> usize {
        if self.recovery.omp.max_iterations == usize::MAX {
            BompConfig::for_k_outliers(k).omp.max_iterations
        } else {
            self.recovery.omp.max_iterations
        }
    }

    /// The recovery configuration a run with outlier budget `k` actually
    /// uses: the `R = f(k)` iteration heuristic resolved and capped at `M`,
    /// and the protocol's [`ExecConfig`] threaded into the OMP scans.
    /// Out-of-process aggregators (`cso-serve`) recover with exactly this
    /// configuration to stay bit-identical to the in-process paths.
    pub fn effective_recovery(&self, k: usize) -> BompConfig {
        let mut recovery = self.recovery;
        recovery.omp.max_iterations = self.budget_for(k).min(self.m);
        recovery.omp.exec = self.exec;
        recovery
    }

    /// Builds every node's sketch `y_l = Φ0·x_l` on the configured
    /// executor, in node order — the node-side half of the protocol,
    /// exposed so real transports (`cso-serve`'s TCP clients) can ship the
    /// same measurements the simulated paths use.
    pub fn node_sketches(&self, cluster: &Cluster) -> Result<Vec<Vector>, LinalgError> {
        let engine = self.engine(cluster.n())?;
        self.build_sketches(&engine, cluster, &Recorder::disabled())
    }

    /// Node-side compression: `y_l = Φ0 · x_l`. Exposed so the MapReduce
    /// layer can reuse it as the CS-Mapper body.
    pub fn sketch_slice(phi0: &ColMatrix, slice: &[f64]) -> Result<Vector, LinalgError> {
        phi0.matvec(&Vector::from_vec(slice.to_vec()))
    }

    /// As [`OutlierProtocol::run`], recording the execution into `rec`.
    ///
    /// The trace is one `protocol.cs` span containing `sketch.build` (all
    /// node-side measurements), `transport` (the single sketch round, one
    /// virtual tick), and `recovery` (which BOMP fills with per-iteration
    /// events — see [`cso_core::bomp_with_matrix_traced`]). The finished
    /// [`CostMeter`] is published into the `comm.*` counters, so the
    /// recorder's metrics agree with [`ProtocolRun::cost`] exactly.
    pub fn run_traced(
        &self,
        cluster: &Cluster,
        k: usize,
        rec: &Recorder,
    ) -> Result<ProtocolRun, LinalgError> {
        let n = cluster.n();
        // All parties regenerate the same operator from the seed; the dense
        // engine materializes Φ0 once here since the simulation shares an
        // address space (bit-identical to per-node regeneration — see
        // tests); the matrix-free engines never form a matrix at all.
        let engine = self.engine(n)?;

        let _proto_span = rec.span_with(
            "protocol.cs",
            &[
                ("nodes", Value::U64(cluster.l() as u64)),
                ("n", Value::U64(n as u64)),
                ("m", Value::U64(self.m as u64)),
                ("k", Value::U64(k as u64)),
                ("backend", Value::Str(self.backend.label().into())),
            ],
        );

        let sketches: Vec<Vector> = {
            let _s = rec.span("sketch.build");
            self.build_sketches(&engine, cluster, rec)?
        };

        let mut meter = CostMeter::new(cluster.l());
        let y;
        {
            let _t = rec.span_with("transport", &[("round", Value::U64(1))]);
            meter.begin_round();
            rec.advance_ticks(1);
            for l in 0..sketches.len() {
                meter.record_values(l, self.m as u64);
            }
            // Canonical dyadic fold over node ids — the one summation
            // order every aggregation path (in-process, serve, relay
            // tier) shares, so they all agree bit-for-bit.
            let members: Vec<(usize, &Vector)> = sketches.iter().enumerate().collect();
            y = crate::fold::dyadic_fold(self.m, &members);
        }

        let recovery = self.effective_recovery(k);
        let result = {
            let _r = rec.span("recovery");
            engine.recover_traced(&y, &recovery, rec)?
        };

        meter.publish(rec);
        let estimate: Vec<KeyValue> =
            result.top_k(k).iter().map(|o| KeyValue { index: o.index, value: o.value }).collect();
        Ok(ProtocolRun { protocol: self.name(), estimate, mode: result.mode, cost: meter.finish() })
    }
}

impl CsProtocol {
    /// Runs the protocol over the real wire format: every node's sketch is
    /// quantized with `encoding`, framed as a [`crate::wire::Message`], decoded on
    /// the aggregator, and the cost is the **actual encoded byte count**
    /// (headers included) rather than the abstract tuple accounting.
    ///
    /// With [`crate::quantize::SketchEncoding::F64`] the recovered result is identical to
    /// [`OutlierProtocol::run`]; narrower encodings trade bounded recovery
    /// noise for a 2–4× smaller payload (the paper's footnote 2).
    pub fn run_over_wire(
        &self,
        cluster: &Cluster,
        k: usize,
        encoding: crate::quantize::SketchEncoding,
    ) -> Result<ProtocolRun, LinalgError> {
        use crate::quantize;
        use crate::wire;

        let n = cluster.n();
        let engine = self.engine(n)?;

        // Node-side measurement runs on the executor; framing and decoding
        // stay sequential in node order, and the aggregation uses the
        // canonical dyadic fold (the byte and float accounting must match
        // the reference exactly).
        let sketches = self.build_sketches(&engine, cluster, &Recorder::disabled())?;
        let mut total_bytes = 0u64;
        let mut decoded: Vec<Vector> = Vec::with_capacity(sketches.len());
        for (l, sketch) in sketches.iter().enumerate() {
            // Node side: quantize + frame.
            let msg = wire::Message::Sketch {
                node: l as u32,
                seed: self.seed,
                payload: quantize::encode(sketch, encoding),
            };
            let bytes = wire::encode(&msg);
            total_bytes += bytes.len() as u64;
            // Aggregator side: decode + verify configuration agreement.
            match wire::decode(&bytes).map_err(|_| LinalgError::InvalidParameter {
                name: "wire",
                message: "sketch message failed to decode".into(),
            })? {
                wire::Message::Sketch { seed, payload, .. } => {
                    if seed != self.seed {
                        return Err(LinalgError::InvalidParameter {
                            name: "seed",
                            message: "node and aggregator disagree on the seed".into(),
                        });
                    }
                    decoded.push(quantize::decode(&payload));
                }
                _ => {
                    return Err(LinalgError::InvalidParameter {
                        name: "wire",
                        message: "unexpected message kind".into(),
                    })
                }
            }
        }
        // The aggregator folds decoded sketches in the canonical dyadic
        // order over node ids, matching the reference run bit-for-bit.
        let members: Vec<(usize, &Vector)> = decoded.iter().enumerate().collect();
        let y = crate::fold::dyadic_fold(self.m, &members);

        let recovery = self.effective_recovery(k);
        let result = engine.recover(&y, &recovery)?;
        let estimate: Vec<KeyValue> =
            result.top_k(k).iter().map(|o| KeyValue { index: o.index, value: o.value }).collect();
        Ok(ProtocolRun {
            protocol: self.name(),
            estimate,
            mode: result.mode,
            cost: crate::cost::CommunicationCost {
                bits: total_bytes * 8,
                tuples: (cluster.l() * self.m) as u64,
                rounds: 1,
            },
        })
    }
}

impl OutlierProtocol for CsProtocol {
    fn name(&self) -> &'static str {
        "cs-bomp"
    }

    fn run(&self, cluster: &Cluster, k: usize) -> Result<ProtocolRun, LinalgError> {
        self.run_traced(cluster, k, &Recorder::disabled())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cso_workloads::{split, MajorityConfig, MajorityData, SliceStrategy};

    fn majority_cluster(seed: u64) -> (Cluster, MajorityData) {
        let data = MajorityData::generate(
            &MajorityConfig { n: 400, s: 8, ..MajorityConfig::default() },
            seed,
        )
        .unwrap();
        let slices = split(
            &data.values,
            4,
            SliceStrategy::Camouflaged { offset: 2000.0, fraction: 0.2 },
            seed + 1,
        )
        .unwrap();
        (Cluster::new(slices).unwrap(), data)
    }

    #[test]
    fn finds_global_outliers_despite_camouflage() {
        let (cluster, data) = majority_cluster(42);
        let proto = CsProtocol::new(120, 7);
        let run = proto.run(&cluster, 8).unwrap();
        assert!((run.mode - 5000.0).abs() < 1.0, "mode = {}", run.mode);
        let truth = data.true_k_outliers(8);
        let (ek, ev) = cso_core::outlier_errors(&truth, &run.estimate).unwrap();
        assert_eq!(ek, 0.0, "estimate = {:?}", run.estimate);
        assert!(ev < 1e-6, "ev = {ev}");
    }

    #[test]
    fn matrix_free_backends_find_the_outliers() {
        let (cluster, data) = majority_cluster(42);
        let truth = data.true_k_outliers(8);
        for backend in [SketchBackend::srht(), SketchBackend::seeded_sparse(12)] {
            let proto = CsProtocol::new(120, 7).with_backend(backend);
            let run = proto.run(&cluster, 8).unwrap();
            assert!((run.mode - 5000.0).abs() < 1.0, "{}: mode = {}", backend.label(), run.mode);
            let (ek, ev) = cso_core::outlier_errors(&truth, &run.estimate).unwrap();
            assert_eq!(ek, 0.0, "{}: estimate = {:?}", backend.label(), run.estimate);
            assert!(ev < 1e-6, "{}: ev = {ev}", backend.label());
        }
    }

    #[test]
    fn backend_choice_does_not_change_the_cost() {
        // Every backend ships the same L·M sketch values in one round —
        // the operator only changes the aggregator-side arithmetic.
        let (cluster, _) = majority_cluster(1);
        let mut costs = Vec::new();
        for backend in
            [SketchBackend::dense(), SketchBackend::srht(), SketchBackend::seeded_sparse(8)]
        {
            let proto = CsProtocol::new(50, 3).with_backend(backend);
            costs.push(proto.run(&cluster, 5).unwrap().cost);
        }
        assert!(costs.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn invalid_backend_parameter_is_rejected_at_run_time() {
        let (cluster, _) = majority_cluster(1);
        let proto = CsProtocol::new(50, 3).with_backend(SketchBackend::seeded_sparse(51));
        assert!(proto.run(&cluster, 5).is_err(), "s > m must fail");
    }

    #[test]
    fn wire_execution_matches_abstract_run_on_every_backend() {
        let (cluster, _) = majority_cluster(77);
        for backend in
            [SketchBackend::dense(), SketchBackend::srht(), SketchBackend::seeded_sparse(12)]
        {
            let proto = CsProtocol::new(110, 5)
                .with_recovery(BompConfig::for_k_outliers(8))
                .with_backend(backend);
            let abstract_run = proto.run(&cluster, 8).unwrap();
            let wire_run =
                proto.run_over_wire(&cluster, 8, crate::quantize::SketchEncoding::F64).unwrap();
            assert_eq!(abstract_run.estimate, wire_run.estimate, "{}", backend.label());
            assert!((abstract_run.mode - wire_run.mode).abs() < 1e-12, "{}", backend.label());
        }
    }

    #[test]
    fn cost_is_l_times_m_values_single_round() {
        let (cluster, _) = majority_cluster(1);
        let proto = CsProtocol::new(50, 3);
        let run = proto.run(&cluster, 5).unwrap();
        assert_eq!(run.cost.tuples, 4 * 50);
        assert_eq!(run.cost.bits, 4 * 50 * 64);
        assert_eq!(run.cost.rounds, 1);
    }

    #[test]
    fn cost_independent_of_key_distribution() {
        // "Our solution is independent of how the keys are distributed over
        // the different nodes" (Section 6.1).
        let data = MajorityData::generate(
            &MajorityConfig { n: 300, s: 5, ..MajorityConfig::default() },
            3,
        )
        .unwrap();
        let proto = CsProtocol::new(64, 9);
        let mut costs = Vec::new();
        for strategy in [
            SliceStrategy::Uniform,
            SliceStrategy::RandomProportions,
            SliceStrategy::Camouflaged { offset: 1000.0, fraction: 0.3 },
        ] {
            let slices = split(&data.values, 5, strategy, 11).unwrap();
            let run = proto.run(&Cluster::new(slices).unwrap(), 5).unwrap();
            costs.push(run.cost);
        }
        assert!(costs.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn recovery_matches_centralized_bomp() {
        // The distributed pipeline must agree with running BOMP directly on
        // the aggregate (linearity, equation (1)).
        let (cluster, _) = majority_cluster(5);
        let n = cluster.n();
        let spec = MeasurementSpec::new(100, n, 13).unwrap();
        let aggregate = cluster.aggregate();
        let y_central = spec.measure_dense(&aggregate).unwrap();
        let central = cso_core::bomp(&spec, &y_central, &BompConfig::for_k_outliers(8)).unwrap();

        let proto = CsProtocol::new(100, 13).with_recovery(BompConfig::for_k_outliers(8));
        let run = proto.run(&cluster, 8).unwrap();
        assert!((run.mode - central.mode).abs() < 1e-6);
        let central_top: Vec<usize> = central.top_k(8).iter().map(|o| o.index).collect();
        let run_top: Vec<usize> = run.estimate.iter().map(|o| o.index).collect();
        assert_eq!(central_top, run_top);
    }

    #[test]
    fn wire_execution_matches_abstract_run_at_f64() {
        let (cluster, _) = majority_cluster(77);
        let proto = CsProtocol::new(110, 5).with_recovery(BompConfig::for_k_outliers(8));
        let abstract_run = proto.run(&cluster, 8).unwrap();
        let wire_run =
            proto.run_over_wire(&cluster, 8, crate::quantize::SketchEncoding::F64).unwrap();
        assert_eq!(abstract_run.estimate, wire_run.estimate);
        assert!((abstract_run.mode - wire_run.mode).abs() < 1e-12);
        // Real bytes = abstract payload + framing headers.
        assert!(wire_run.cost.bits > abstract_run.cost.bits);
        assert!(wire_run.cost.bits < abstract_run.cost.bits + cluster.l() as u64 * 8 * 32);
    }

    #[test]
    fn wire_execution_with_quantization_is_cheaper_and_still_accurate() {
        let (cluster, data) = majority_cluster(78);
        let proto = CsProtocol::new(120, 9).with_recovery(BompConfig::for_k_outliers(8));
        let f64_run =
            proto.run_over_wire(&cluster, 8, crate::quantize::SketchEncoding::F64).unwrap();
        let f32_run =
            proto.run_over_wire(&cluster, 8, crate::quantize::SketchEncoding::F32).unwrap();
        assert!(f32_run.cost.bits < f64_run.cost.bits * 6 / 10);
        let truth = data.true_k_outliers(8);
        let ek = cso_core::error_on_key(&truth, &f32_run.estimate).unwrap();
        assert_eq!(ek, 0.0, "32-bit sketches must not lose the outliers");
    }

    #[test]
    fn traced_run_matches_untraced_and_publishes_exact_cost() {
        let (cluster, _) = majority_cluster(42);
        // Pin the sequential reference path so the recorded span sequence
        // below is exact on any host (multi-worker runs add exec.* spans).
        let proto = CsProtocol::new(120, 7)
            .with_recovery(BompConfig::for_k_outliers(8))
            .with_exec(ExecConfig::sequential());
        let plain = proto.run(&cluster, 8).unwrap();
        let rec = Recorder::new();
        let traced = proto.run_traced(&cluster, 8, &rec).unwrap();

        // Tracing must not change the computation.
        assert_eq!(plain.estimate, traced.estimate);
        assert_eq!(plain.cost, traced.cost);
        assert!((plain.mode - traced.mode).abs() < 1e-12);

        // Published comm.* counters equal the CostMeter totals exactly.
        let snap = rec.metrics_snapshot();
        assert_eq!(snap.counter("comm.bits"), Some(traced.cost.bits));
        assert_eq!(snap.counter("comm.tuples"), Some(traced.cost.tuples));
        assert_eq!(snap.counter("comm.rounds"), Some(u64::from(traced.cost.rounds)));

        // The trace contains the protocol span structure and per-iteration
        // BOMP events.
        let trace = rec.trace_snapshot();
        let span_names: Vec<&str> = trace
            .iter()
            .filter(|e| e.kind == cso_obs::EntryKind::SpanStart)
            .map(|e| e.name)
            .collect();
        assert_eq!(
            span_names,
            vec![
                "protocol.cs",
                "sketch.build",
                "transport",
                "recovery",
                "recover.bomp",
                "recover.omp"
            ]
        );
        assert!(!rec.events_named("bomp.iter").is_empty());
        assert_eq!(rec.events_named("bomp.done").len(), 1);
    }

    /// Parallel sketch builds are bit-identical to the sequential
    /// reference — estimate value bits, mode bits, and cost all match for
    /// worker counts that exercise real stealing.
    #[test]
    fn parallel_run_is_bit_identical_to_sequential() {
        let (cluster, _) = majority_cluster(23);
        let base = CsProtocol::new(110, 9).with_recovery(BompConfig::for_k_outliers(8));
        let seq = base.clone().with_exec(ExecConfig::sequential()).run(&cluster, 8).unwrap();
        for workers in [1, 2, 8] {
            let par =
                base.clone().with_exec(ExecConfig::with_workers(workers)).run(&cluster, 8).unwrap();
            assert_eq!(par.cost, seq.cost, "workers = {workers}");
            assert_eq!(par.mode.to_bits(), seq.mode.to_bits(), "workers = {workers}");
            assert_eq!(par.estimate.len(), seq.estimate.len());
            for (a, b) in par.estimate.iter().zip(&seq.estimate) {
                assert_eq!(a.index, b.index, "workers = {workers}");
                assert_eq!(a.value.to_bits(), b.value.to_bits(), "workers = {workers}");
            }
            // The wire path agrees too.
            let wire = base
                .clone()
                .with_exec(ExecConfig::with_workers(workers))
                .run_over_wire(&cluster, 8, crate::quantize::SketchEncoding::F64)
                .unwrap();
            assert_eq!(wire.estimate, seq.estimate, "workers = {workers}");
        }
    }

    /// A traced multi-worker run records `exec.*` inside `sketch.build`
    /// without disturbing the `comm.*` cost metrics.
    #[test]
    fn parallel_traced_run_records_exec_metrics() {
        let (cluster, _) = majority_cluster(31);
        let proto = CsProtocol::new(80, 3)
            .with_recovery(BompConfig::for_k_outliers(6))
            .with_exec(ExecConfig::with_workers(4));
        let rec = Recorder::new();
        let run = proto.run_traced(&cluster, 6, &rec).unwrap();
        let snap = rec.metrics_snapshot();
        // One executor task per node.
        assert_eq!(snap.counter("exec.tasks"), Some(cluster.l() as u64));
        assert_eq!(snap.gauge("exec.workers"), Some(4.0));
        assert_eq!(rec.events_named("exec.task").len(), cluster.l());
        // Cost accounting is untouched by the executor.
        assert_eq!(snap.counter("comm.bits"), Some(run.cost.bits));
        assert_eq!(snap.counter("comm.tuples"), Some(run.cost.tuples));
    }

    #[test]
    fn default_budget_follows_paper_heuristic() {
        let p = CsProtocol::new(100, 1);
        for k in [5, 10, 20] {
            let r = p.budget_for(k);
            assert!(r >= 2 * k && r <= 5 * k);
        }
        let fixed = CsProtocol::new(100, 1).with_recovery(BompConfig::with_max_iterations(7));
        assert_eq!(fixed.budget_for(20), 7);
    }
}
