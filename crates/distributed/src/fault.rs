//! Deterministic fault injection for the transport layer.
//!
//! Real aggregations lose nodes, corrupt frames, deliver duplicates, and
//! straggle. This module simulates all of that *reproducibly*: a
//! [`FaultPlan`] is a pure description of a failure regime (seeded, so two
//! runs inject byte-identical faults), and a [`LossyChannel`] applies it to
//! individual transmission attempts on a **virtual clock** — ticks are
//! plain integers, never real sleeps, so fault-heavy tests stay instant.
//!
//! Per-attempt randomness is derived from `(plan seed, node, attempt)`
//! rather than from a shared stream, so the outcome of one node's attempt
//! never depends on how many messages other nodes sent first. That makes
//! degraded-mode runs order-independent and individual faults replayable in
//! isolation.

use cso_linalg::random::{derive_seed, stream_rng};
use rand::Rng;
use std::collections::BTreeSet;

/// A seeded, declarative description of the faults to inject.
///
/// Rates are per transmission attempt and independent; hard-failed nodes
/// ([`FaultPlan::fail_nodes`]) drop every attempt regardless of rates.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Master seed all injected faults derive from.
    pub seed: u64,
    /// Nodes that are down for the whole run: every attempt is lost.
    pub failed_nodes: BTreeSet<usize>,
    /// Probability an attempt's frame is silently dropped.
    pub drop_rate: f64,
    /// Probability an attempt's frame arrives with flipped bits.
    pub corrupt_rate: f64,
    /// Probability a delivered frame arrives twice.
    pub duplicate_rate: f64,
    /// Probability a delivered frame straggles (extra delay ticks).
    pub delay_rate: f64,
    /// Largest straggler delay, in virtual ticks.
    pub max_delay_ticks: u64,
}

impl FaultPlan {
    /// A plan that injects nothing (useful as a baseline).
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            failed_nodes: BTreeSet::new(),
            drop_rate: 0.0,
            corrupt_rate: 0.0,
            duplicate_rate: 0.0,
            delay_rate: 0.0,
            max_delay_ticks: 0,
        }
    }

    /// A fault-free plan with the given seed, to be refined by the builder
    /// methods below.
    pub fn new(seed: u64) -> Self {
        FaultPlan { seed, ..FaultPlan::none() }
    }

    /// Marks nodes as hard-failed for the whole run.
    pub fn fail_nodes(mut self, nodes: &[usize]) -> Self {
        self.failed_nodes.extend(nodes.iter().copied());
        self
    }

    /// Sets the per-attempt drop probability.
    pub fn drop_rate(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "drop_rate must lie in [0, 1]");
        self.drop_rate = p;
        self
    }

    /// Sets the per-attempt corruption probability.
    pub fn corrupt_rate(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "corrupt_rate must lie in [0, 1]");
        self.corrupt_rate = p;
        self
    }

    /// Sets the per-delivery duplication probability.
    pub fn duplicate_rate(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "duplicate_rate must lie in [0, 1]");
        self.duplicate_rate = p;
        self
    }

    /// Sets the straggler probability and its worst-case delay.
    pub fn delay(mut self, p: f64, max_ticks: u64) -> Self {
        assert!((0.0..=1.0).contains(&p), "delay_rate must lie in [0, 1]");
        self.delay_rate = p;
        self.max_delay_ticks = max_ticks;
        self
    }
}

/// What the channel did to one transmission attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Delivery {
    /// The frame(s) arrived. `frames` holds one copy, or two when the
    /// channel duplicated the delivery; bytes may have been corrupted.
    /// `delay_ticks` is the straggler delay beyond the nominal transit time.
    Delivered {
        /// Received byte buffers (1 normally, 2 when duplicated).
        frames: Vec<Vec<u8>>,
        /// Extra virtual ticks this delivery straggled.
        delay_ticks: u64,
    },
    /// The frame was lost.
    Dropped,
}

/// Running totals of the faults a [`LossyChannel`] actually injected.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Attempts sent through the channel.
    pub attempts: u64,
    /// Frames silently dropped (including all attempts to failed nodes).
    pub dropped: u64,
    /// Frames delivered with flipped bits.
    pub corrupted: u64,
    /// Frames delivered twice.
    pub duplicated: u64,
    /// Frames delivered late.
    pub delayed: u64,
}

impl FaultStats {
    /// Adds these totals to the recorder's `fault.*` counters.
    pub fn publish(&self, rec: &cso_obs::Recorder) {
        rec.counter_add("fault.attempts", self.attempts);
        rec.counter_add("fault.dropped", self.dropped);
        rec.counter_add("fault.corrupted", self.corrupted);
        rec.counter_add("fault.duplicated", self.duplicated);
        rec.counter_add("fault.delayed", self.delayed);
    }
}

/// Applies a [`FaultPlan`] to transmission attempts.
#[derive(Debug, Clone)]
pub struct LossyChannel<'a> {
    plan: &'a FaultPlan,
    stats: FaultStats,
}

impl<'a> LossyChannel<'a> {
    /// A channel injecting the given plan.
    pub fn new(plan: &'a FaultPlan) -> Self {
        LossyChannel { plan, stats: FaultStats::default() }
    }

    /// Totals of what has been injected so far.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// Transmits `frame` from `node` as attempt number `attempt`
    /// (0-based). Deterministic in `(plan.seed, node, attempt)` only.
    pub fn transmit(&mut self, node: usize, attempt: u32, frame: &[u8]) -> Delivery {
        self.stats.attempts += 1;
        if self.plan.failed_nodes.contains(&node) {
            self.stats.dropped += 1;
            return Delivery::Dropped;
        }
        // One private stream per (node, attempt): outcomes are replayable
        // in isolation and independent of global send order.
        let stream = derive_seed(node as u64, attempt as u64);
        let mut rng = stream_rng(self.plan.seed, stream);

        if rng.gen_bool(self.plan.drop_rate) {
            self.stats.dropped += 1;
            return Delivery::Dropped;
        }

        let mut received = frame.to_vec();
        if rng.gen_bool(self.plan.corrupt_rate) {
            self.stats.corrupted += 1;
            corrupt_in_place(&mut received, &mut rng);
        }

        let mut frames = vec![received.clone()];
        if rng.gen_bool(self.plan.duplicate_rate) {
            self.stats.duplicated += 1;
            frames.push(received);
        }

        let delay_ticks = if self.plan.max_delay_ticks > 0 && rng.gen_bool(self.plan.delay_rate) {
            self.stats.delayed += 1;
            rng.gen_range(1..=self.plan.max_delay_ticks)
        } else {
            0
        };

        Delivery::Delivered { frames, delay_ticks }
    }
}

/// Flips one to three bits at random positions (a burst of length ≤ 3 is
/// well inside CRC-32's guaranteed detection envelope, and single-bit flips
/// are the adversarial best case for slipping past a checksum).
fn corrupt_in_place(bytes: &mut [u8], rng: &mut impl Rng) {
    if bytes.is_empty() {
        return;
    }
    let flips = rng.gen_range(1..=3usize);
    for _ in 0..flips {
        let byte = rng.gen_range(0..bytes.len());
        let bit = rng.gen_range(0..8u32);
        bytes[byte] ^= 1 << bit;
    }
}

/// A virtual clock: integer ticks, advanced explicitly, never slept on.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VirtualClock {
    now: u64,
}

impl VirtualClock {
    /// A clock at tick zero.
    pub fn new() -> Self {
        VirtualClock { now: 0 }
    }

    /// Current tick.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Advances the clock by `ticks`.
    pub fn advance(&mut self, ticks: u64) {
        self.now += ticks;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame() -> Vec<u8> {
        (0u8..64).collect()
    }

    #[test]
    fn clean_plan_is_transparent() {
        let plan = FaultPlan::none();
        let mut ch = LossyChannel::new(&plan);
        for node in 0..10 {
            match ch.transmit(node, 0, &frame()) {
                Delivery::Delivered { frames, delay_ticks } => {
                    assert_eq!(frames, vec![frame()]);
                    assert_eq!(delay_ticks, 0);
                }
                Delivery::Dropped => panic!("clean channel must deliver"),
            }
        }
        assert_eq!(ch.stats().dropped, 0);
        assert_eq!(ch.stats().attempts, 10);
    }

    #[test]
    fn failed_nodes_always_drop_others_unaffected() {
        let plan = FaultPlan::new(7).fail_nodes(&[1, 3]);
        let mut ch = LossyChannel::new(&plan);
        for attempt in 0..5 {
            assert_eq!(ch.transmit(1, attempt, &frame()), Delivery::Dropped);
            assert_eq!(ch.transmit(3, attempt, &frame()), Delivery::Dropped);
            assert!(matches!(ch.transmit(0, attempt, &frame()), Delivery::Delivered { .. }));
        }
        assert_eq!(ch.stats().dropped, 10);
    }

    #[test]
    fn deterministic_and_order_independent() {
        let plan =
            FaultPlan::new(99).drop_rate(0.3).corrupt_rate(0.3).duplicate_rate(0.3).delay(0.3, 10);
        // Same (node, attempt) → same outcome, regardless of what else the
        // channel carried beforehand.
        let mut a = LossyChannel::new(&plan);
        let mut b = LossyChannel::new(&plan);
        for noise in 0..17 {
            b.transmit(noise, 9, &frame());
        }
        for node in 0..20 {
            for attempt in 0..3 {
                assert_eq!(
                    a.transmit(node, attempt, &frame()),
                    b.transmit(node, attempt, &frame()),
                    "node {node} attempt {attempt}"
                );
            }
        }
    }

    #[test]
    fn rates_are_roughly_honored() {
        let plan = FaultPlan::new(5).drop_rate(0.25);
        let mut ch = LossyChannel::new(&plan);
        let trials = 2000u64;
        for node in 0..trials {
            ch.transmit(node as usize, 0, &frame());
        }
        let dropped = ch.stats().dropped;
        let expect = trials / 4;
        assert!(
            dropped > expect / 2 && dropped < expect * 2,
            "dropped {dropped} of {trials} at rate 0.25"
        );
    }

    #[test]
    fn corruption_changes_bytes_but_not_length() {
        let plan = FaultPlan::new(3).corrupt_rate(1.0);
        let mut ch = LossyChannel::new(&plan);
        let original = frame();
        let mut changed = 0;
        for node in 0..50 {
            if let Delivery::Delivered { frames, .. } = ch.transmit(node, 0, &original) {
                assert_eq!(frames[0].len(), original.len());
                if frames[0] != original {
                    changed += 1;
                }
            }
        }
        assert_eq!(changed, 50, "corrupt_rate 1.0 must mutate every frame");
        assert_eq!(ch.stats().corrupted, 50);
    }

    #[test]
    fn duplicates_carry_identical_bytes() {
        let plan = FaultPlan::new(11).duplicate_rate(1.0);
        let mut ch = LossyChannel::new(&plan);
        match ch.transmit(0, 0, &frame()) {
            Delivery::Delivered { frames, .. } => {
                assert_eq!(frames.len(), 2);
                assert_eq!(frames[0], frames[1]);
            }
            Delivery::Dropped => panic!("must deliver"),
        }
    }

    #[test]
    fn delays_bounded_by_max() {
        let plan = FaultPlan::new(2).delay(1.0, 7);
        let mut ch = LossyChannel::new(&plan);
        for node in 0..50 {
            if let Delivery::Delivered { delay_ticks, .. } = ch.transmit(node, 0, &frame()) {
                assert!((1..=7).contains(&delay_ticks), "delay {delay_ticks}");
            }
        }
        assert_eq!(ch.stats().delayed, 50);
    }

    #[test]
    fn virtual_clock_never_sleeps() {
        let mut clock = VirtualClock::new();
        assert_eq!(clock.now(), 0);
        clock.advance(5);
        clock.advance(0);
        clock.advance(100);
        assert_eq!(clock.now(), 105);
    }

    #[test]
    #[should_panic(expected = "drop_rate")]
    fn out_of_range_rate_rejected() {
        let _ = FaultPlan::new(1).drop_rate(1.5);
    }
}
