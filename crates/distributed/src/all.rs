//! The ALL baseline: transmit everything, compute exactly.
//!
//! "In practice, all data is usually transmitted to the aggregator node. We
//! consider this basic approach as one of our baselines." Two encodings
//! (Section 6.1.2): the vectorized form costs `L·N·S_v`; shipping
//! keyid-value pairs costs `Σ nᵢ·S_t` and wins only when slices are very
//! sparse.

use crate::cluster::Cluster;
use crate::cost::{all_kv_cost, all_vectorized_cost, CommunicationCost};
use crate::protocol::{OutlierProtocol, ProtocolRun};
use cso_core::outlier;
use cso_linalg::LinalgError;

/// Wire encoding used by the ALL baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllEncoding {
    /// Dense vectors of length `N` from every node.
    Vectorized,
    /// Only non-zero entries, as keyid-value pairs.
    KvPairs,
}

/// The transmit-everything baseline protocol.
#[derive(Debug, Clone, Copy)]
pub struct AllProtocol {
    /// Chosen wire encoding.
    pub encoding: AllEncoding,
}

impl AllProtocol {
    /// Vectorized-encoding baseline (the paper's normalization reference).
    pub fn vectorized() -> Self {
        AllProtocol { encoding: AllEncoding::Vectorized }
    }

    /// Keyid-value-pair baseline.
    pub fn kv_pairs() -> Self {
        AllProtocol { encoding: AllEncoding::KvPairs }
    }

    /// Picks the cheaper of the two encodings for this cluster, as a real
    /// deployment would.
    pub fn cheapest_for(cluster: &Cluster) -> Self {
        let v = all_vectorized_cost(cluster.l(), cluster.n());
        let kv = all_kv_cost(&cluster.nonzeros_per_node());
        if kv.bits < v.bits {
            Self::kv_pairs()
        } else {
            Self::vectorized()
        }
    }
}

impl OutlierProtocol for AllProtocol {
    fn name(&self) -> &'static str {
        match self.encoding {
            AllEncoding::Vectorized => "all-vectorized",
            AllEncoding::KvPairs => "all-kv",
        }
    }

    fn run(&self, cluster: &Cluster, k: usize) -> Result<ProtocolRun, LinalgError> {
        let cost: CommunicationCost = match self.encoding {
            AllEncoding::Vectorized => all_vectorized_cost(cluster.l(), cluster.n()),
            AllEncoding::KvPairs => all_kv_cost(&cluster.nonzeros_per_node()),
        };
        let aggregate = cluster.aggregate();
        // The aggregator sees exact data: mode by exact majority when one
        // exists, histogram estimate otherwise.
        let mode = outlier::exact_majority_mode(&aggregate)
            .map_or_else(|| outlier::estimated_mode(&aggregate), Ok)?;
        let estimate = outlier::k_outliers(&aggregate, mode, k);
        Ok(ProtocolRun { protocol: self.name(), estimate, mode, cost })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cso_workloads::{split, MajorityConfig, MajorityData, SliceStrategy};

    fn cluster() -> (Cluster, MajorityData) {
        let data = MajorityData::generate(
            &MajorityConfig { n: 200, s: 6, ..MajorityConfig::default() },
            3,
        )
        .unwrap();
        let slices = split(&data.values, 4, SliceStrategy::RandomProportions, 4).unwrap();
        (Cluster::new(slices).unwrap(), data)
    }

    #[test]
    fn all_is_exact() {
        let (c, data) = cluster();
        let run = AllProtocol::vectorized().run(&c, 6).unwrap();
        assert_eq!(run.mode, 5000.0);
        let truth = data.true_k_outliers(6);
        let (ek, ev) = cso_core::outlier_errors(&truth, &run.estimate).unwrap();
        assert_eq!(ek, 0.0);
        assert!(ev < 1e-9);
    }

    #[test]
    fn vectorized_cost_is_l_n_values() {
        let (c, _) = cluster();
        let run = AllProtocol::vectorized().run(&c, 5).unwrap();
        assert_eq!(run.cost.tuples, (4 * 200) as u64);
        assert_eq!(run.cost.bits, (4 * 200 * 64) as u64);
        assert_eq!(run.cost.rounds, 1);
    }

    #[test]
    fn kv_cost_counts_nonzeros() {
        let (c, _) = cluster();
        let run = AllProtocol::kv_pairs().run(&c, 5).unwrap();
        let nz: u64 = c.nonzeros_per_node().iter().map(|&x| x as u64).sum();
        assert_eq!(run.cost.tuples, nz);
        assert_eq!(run.cost.bits, nz * 96);
    }

    #[test]
    fn cheapest_picks_vectorized_for_dense() {
        let (c, _) = cluster();
        // RandomProportions keeps all entries non-zero → kv is 1.5× dearer.
        let p = AllProtocol::cheapest_for(&c);
        assert_eq!(p.name(), "all-vectorized");
    }

    #[test]
    fn cheapest_picks_kv_for_sparse() {
        let mut slices = vec![vec![0.0; 100]; 3];
        slices[0][5] = 1.0;
        slices[1][6] = 2.0;
        slices[2][7] = 3.0;
        let c = Cluster::new(slices).unwrap();
        assert_eq!(AllProtocol::cheapest_for(&c).name(), "all-kv");
    }

    #[test]
    fn histogram_mode_used_without_exact_majority() {
        // Jittered values: no exact majority, estimated mode must kick in.
        let values: Vec<f64> = (0..100)
            .map(|i| if i < 90 { 1800.0 + (i % 7) as f64 * 0.01 } else { 9000.0 })
            .collect();
        let c = Cluster::new(vec![values]).unwrap();
        let run = AllProtocol::vectorized().run(&c, 10).unwrap();
        assert!((run.mode - 1800.0).abs() < 40.0, "mode = {}", run.mode);
        // All 10 of the far outliers must rank first.
        let top: Vec<usize> = run.estimate.iter().map(|o| o.index).collect();
        assert!(top.iter().all(|&i| i >= 90), "{top:?}");
    }
}
