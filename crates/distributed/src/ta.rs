//! Fagin's Threshold Algorithm (TA) for distributed top-k.
//!
//! The related-work baseline of Section 7.1: "a seminal work by Fagin et
//! al. proposed the famous Threshold Algorithm". TA repeatedly performs
//! *sorted access* — every node reveals its next-largest local value — and
//! stops once `k` keys have aggregated values above the threshold
//! `τ = Σ_l (value at the current rank on node l)`, which upper-bounds any
//! unseen key's total.
//!
//! Two properties the paper leans on are directly observable here:
//!
//! 1. TA is **exact** for top-k over non-negative data, but "suffers from
//!    limited scalability with respect to the number of nodes as it
//!    fundamentally runs in multiple rounds" — the round count is the
//!    number of sorted-access depths explored.
//! 2. With **negative values** the partial sum is no longer a lower bound
//!    and the threshold no longer an upper bound, so TA is unsound for the
//!    k-outlier problem over `R^N` ([`TaProtocol::run_topk`] refuses such
//!    inputs rather than silently returning wrong answers).

use crate::cluster::Cluster;
use crate::cost::CostMeter;
use cso_core::KeyValue;
use cso_linalg::LinalgError;

/// Result of a TA execution.
#[derive(Debug, Clone)]
pub struct TaRun {
    /// The exact top-k keys by aggregated value, descending.
    pub topk: Vec<KeyValue>,
    /// Communication cost (each sorted/random access ships one keyid-value
    /// pair; one round per access depth).
    pub cost: crate::cost::CommunicationCost,
    /// Sorted-access depth reached before the threshold stop fired.
    pub depth: usize,
}

/// Fagin's Threshold Algorithm over per-node sorted lists.
#[derive(Debug, Clone, Copy, Default)]
pub struct TaProtocol;

impl TaProtocol {
    /// Runs TA for the exact top-k. Errors when any slice contains a
    /// negative value (TA's threshold argument requires monotone
    /// aggregation over non-negative contributions) or `k == 0`.
    pub fn run_topk(&self, cluster: &Cluster, k: usize) -> Result<TaRun, LinalgError> {
        if k == 0 {
            return Err(LinalgError::InvalidParameter {
                name: "k",
                message: "k must be >= 1".into(),
            });
        }
        for l in 0..cluster.l() {
            if cluster.slice(l).iter().any(|&v| v < 0.0) {
                return Err(LinalgError::InvalidParameter {
                    name: "slice",
                    message: "TA requires non-negative values (see Section 7.1)".into(),
                });
            }
        }
        let n = cluster.n();
        let l = cluster.l();
        let mut meter = CostMeter::new(l);

        // Each node pre-sorts its local list (local work, not communication).
        let sorted: Vec<Vec<(usize, f64)>> = (0..l)
            .map(|node| {
                let mut v: Vec<(usize, f64)> =
                    cluster.slice(node).iter().copied().enumerate().collect();
                v.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite").then(a.0.cmp(&b.0)));
                v
            })
            .collect();

        // Seen keys with their exact totals (random access resolves a key's
        // value on every node the moment it is first seen).
        let mut total: Vec<Option<f64>> = vec![None; n];
        let mut seen_order: Vec<usize> = Vec::new();

        let mut depth = 0usize;
        loop {
            if depth >= n {
                break; // every key seen — exact by exhaustion
            }
            meter.begin_round();
            // Sorted access: each node reveals its entry at `depth`.
            let mut threshold = 0.0;
            for (node, list) in sorted.iter().enumerate() {
                let (key, value) = list[depth];
                threshold += value;
                meter.record_kv_pairs(node, 1);
                if total[key].is_none() {
                    // Random access: fetch this key's value from every
                    // other node (one pair each).
                    let mut t = 0.0;
                    for other in 0..l {
                        t += cluster.slice(other)[key];
                        if other != node {
                            meter.record_kv_pairs(other, 1);
                        }
                    }
                    total[key] = Some(t);
                    seen_order.push(key);
                }
            }
            depth += 1;
            // Stop once k seen keys have totals ≥ threshold.
            let mut seen: Vec<(usize, f64)> =
                seen_order.iter().map(|&key| (key, total[key].expect("seen"))).collect();
            seen.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite").then(a.0.cmp(&b.0)));
            if seen.len() >= k && seen[k - 1].1 >= threshold {
                let topk = seen
                    .into_iter()
                    .take(k)
                    .map(|(index, value)| KeyValue { index, value })
                    .collect();
                return Ok(TaRun { topk, cost: meter.finish(), depth });
            }
        }
        // Exhaustive fallback (tiny inputs): everything seen.
        let mut seen: Vec<(usize, f64)> =
            seen_order.iter().map(|&key| (key, total[key].expect("seen"))).collect();
        seen.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite").then(a.0.cmp(&b.0)));
        seen.truncate(k);
        Ok(TaRun {
            topk: seen.into_iter().map(|(index, value)| KeyValue { index, value }).collect(),
            cost: meter.finish(),
            depth,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cso_workloads::{split, SliceStrategy};

    fn nonneg_cluster() -> (Cluster, Vec<f64>) {
        // Skewed non-negative data with clear top keys.
        let mut x: Vec<f64> = (0..200).map(|i| ((i * 7919) % 97) as f64).collect();
        x[13] = 5000.0;
        x[77] = 4000.0;
        x[150] = 3000.0;
        let slices = split(&x, 4, SliceStrategy::RandomProportions, 3).unwrap();
        (Cluster::new(slices).unwrap(), x)
    }

    #[test]
    fn ta_is_exact_on_nonnegative_data() {
        let (cluster, x) = nonneg_cluster();
        let run = TaProtocol.run_topk(&cluster, 3).unwrap();
        let keys: Vec<usize> = run.topk.iter().map(|o| o.index).collect();
        assert_eq!(keys, vec![13, 77, 150]);
        for o in &run.topk {
            assert!((o.value - x[o.index]).abs() < 1e-9);
        }
    }

    #[test]
    fn ta_stops_early_on_skewed_data() {
        let (cluster, _) = nonneg_cluster();
        let run = TaProtocol.run_topk(&cluster, 3).unwrap();
        assert!(run.depth < cluster.n(), "threshold stop must fire early");
        // Multi-round by construction — the paper's scalability complaint.
        assert!(run.cost.rounds as usize == run.depth);
    }

    #[test]
    fn ta_rejects_negative_values() {
        let slices = vec![vec![1.0, -2.0, 3.0]];
        let cluster = Cluster::new(slices).unwrap();
        let err = TaProtocol.run_topk(&cluster, 1).unwrap_err();
        assert!(matches!(err, LinalgError::InvalidParameter { .. }));
    }

    #[test]
    fn ta_rejects_zero_k() {
        let (cluster, _) = nonneg_cluster();
        assert!(TaProtocol.run_topk(&cluster, 0).is_err());
    }

    #[test]
    fn ta_exhaustive_on_uniform_data() {
        // All values equal: the threshold never separates, TA degenerates
        // to scanning everything but stays exact.
        let slices = vec![vec![1.0; 10], vec![1.0; 10]];
        let cluster = Cluster::new(slices).unwrap();
        let run = TaProtocol.run_topk(&cluster, 2).unwrap();
        assert_eq!(run.topk.len(), 2);
        assert!((run.topk[0].value - 2.0).abs() < 1e-12);
    }

    #[test]
    fn ta_cost_grows_with_depth() {
        let (cluster, _) = nonneg_cluster();
        let shallow = TaProtocol.run_topk(&cluster, 1).unwrap();
        let deep = TaProtocol.run_topk(&cluster, 10).unwrap();
        assert!(deep.depth >= shallow.depth);
        assert!(deep.cost.bits >= shallow.cost.bits);
    }
}
