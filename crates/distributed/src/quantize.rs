//! Sketch quantization — the paper's footnote 2: "In practice, additional
//! compression techniques can be applied on the data measurement for
//! further data reduction."
//!
//! Measurements are `f64` (64 bits per value in the cost model). Because
//! recovery only needs the sketch up to the noise floor already induced by
//! near-sparsity, transmitting narrower encodings trades a small, bounded
//! EV increase for a 2–4× further cost reduction:
//!
//! - [`SketchEncoding::F32`] — IEEE single precision, 32 bits/value;
//! - [`SketchEncoding::Fixed16`] — 16-bit fixed point over a per-sketch
//!   scale (max-abs), 16 bits/value plus one 64-bit scale header.
//!
//! The `ablation_quantize` bench quantifies the EV impact.

use cso_linalg::{LinalgError, Vector};

/// Wire encodings for an `M`-length sketch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SketchEncoding {
    /// Full 64-bit doubles (the paper's default).
    F64,
    /// 32-bit floats.
    F32,
    /// 16-bit fixed point with a shared max-abs scale.
    Fixed16,
}

impl SketchEncoding {
    /// Bits per transmitted value.
    pub fn bits_per_value(&self) -> u64 {
        match self {
            SketchEncoding::F64 => 64,
            SketchEncoding::F32 => 32,
            SketchEncoding::Fixed16 => 16,
        }
    }

    /// Total payload bits for an `m`-value sketch (including the scale
    /// header for fixed-point).
    pub fn payload_bits(&self, m: usize) -> u64 {
        let header = if *self == SketchEncoding::Fixed16 { 64 } else { 0 };
        header + self.bits_per_value() * m as u64
    }
}

/// A sketch quantized for transmission.
#[derive(Debug, Clone, PartialEq)]
pub enum EncodedSketch {
    /// Lossless doubles.
    F64(Vec<f64>),
    /// Single-precision floats.
    F32(Vec<f32>),
    /// Fixed-point values with their shared scale (`value = q · scale`).
    Fixed16 {
        /// Quantized values, `q ∈ [-32767, 32767]`.
        values: Vec<i16>,
        /// Dequantization scale.
        scale: f64,
    },
}

impl EncodedSketch {
    /// Number of values.
    pub fn len(&self) -> usize {
        match self {
            EncodedSketch::F64(v) => v.len(),
            EncodedSketch::F32(v) => v.len(),
            EncodedSketch::Fixed16 { values, .. } => values.len(),
        }
    }

    /// True when the sketch holds no values.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The encoding used.
    pub fn encoding(&self) -> SketchEncoding {
        match self {
            EncodedSketch::F64(_) => SketchEncoding::F64,
            EncodedSketch::F32(_) => SketchEncoding::F32,
            EncodedSketch::Fixed16 { .. } => SketchEncoding::Fixed16,
        }
    }
}

/// Quantizes a sketch for transmission.
pub fn encode(sketch: &Vector, encoding: SketchEncoding) -> EncodedSketch {
    match encoding {
        SketchEncoding::F64 => EncodedSketch::F64(sketch.as_slice().to_vec()),
        SketchEncoding::F32 => EncodedSketch::F32(sketch.iter().map(|&v| v as f32).collect()),
        SketchEncoding::Fixed16 => {
            let max = sketch.norm_inf();
            if max == 0.0 {
                return EncodedSketch::Fixed16 { values: vec![0; sketch.len()], scale: 0.0 };
            }
            let scale = max / 32767.0;
            let values = sketch
                .iter()
                .map(|&v| (v / scale).round().clamp(-32767.0, 32767.0) as i16)
                .collect();
            EncodedSketch::Fixed16 { values, scale }
        }
    }
}

/// Reconstructs the (possibly lossy) sketch on the aggregator side.
pub fn decode(encoded: &EncodedSketch) -> Vector {
    match encoded {
        EncodedSketch::F64(v) => Vector::from_vec(v.clone()),
        EncodedSketch::F32(v) => Vector::from_vec(v.iter().map(|&x| x as f64).collect()),
        EncodedSketch::Fixed16 { values, scale } => {
            Vector::from_vec(values.iter().map(|&q| q as f64 * scale).collect())
        }
    }
}

/// Round-trips a sketch through an encoding, returning the received vector
/// and the exact payload size. Errors on an empty sketch.
pub fn transmit(sketch: &Vector, encoding: SketchEncoding) -> Result<(Vector, u64), LinalgError> {
    if sketch.is_empty() {
        return Err(LinalgError::Empty { op: "transmit" });
    }
    let encoded = encode(sketch, encoding);
    let bits = encoding.payload_bits(sketch.len());
    Ok((decode(&encoded), bits))
}

/// Worst-case relative quantization error of an encoding, `‖ŷ − y‖∞ ≤
/// bound · ‖y‖∞` (0 for lossless F64).
pub fn relative_error_bound(encoding: SketchEncoding) -> f64 {
    match encoding {
        SketchEncoding::F64 => 0.0,
        SketchEncoding::F32 => f32::EPSILON as f64,
        SketchEncoding::Fixed16 => 0.5 / 32767.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vector {
        Vector::from_vec(vec![1.5, -20_000.25, 0.0, 3e-3, 12_345.678])
    }

    #[test]
    fn f64_round_trip_is_lossless() {
        let y = sample();
        let (back, bits) = transmit(&y, SketchEncoding::F64).unwrap();
        assert!(back.approx_eq(&y, 0.0));
        assert_eq!(bits, 5 * 64);
    }

    #[test]
    fn f32_halves_cost_with_tiny_error() {
        let y = sample();
        let (back, bits) = transmit(&y, SketchEncoding::F32).unwrap();
        assert_eq!(bits, 5 * 32);
        let rel = back.sub(&y).unwrap().norm_inf() / y.norm_inf();
        assert!(rel <= relative_error_bound(SketchEncoding::F32) * 2.0, "rel = {rel}");
    }

    #[test]
    fn fixed16_error_within_bound() {
        let y = sample();
        let (back, bits) = transmit(&y, SketchEncoding::Fixed16).unwrap();
        assert_eq!(bits, 64 + 5 * 16);
        let rel = back.sub(&y).unwrap().norm_inf() / y.norm_inf();
        assert!(rel <= relative_error_bound(SketchEncoding::Fixed16), "rel = {rel}");
    }

    #[test]
    fn fixed16_zero_sketch() {
        let y = Vector::zeros(4);
        let enc = encode(&y, SketchEncoding::Fixed16);
        let back = decode(&enc);
        assert!(back.approx_eq(&y, 0.0));
    }

    #[test]
    fn empty_sketch_rejected() {
        assert!(transmit(&Vector::zeros(0), SketchEncoding::F32).is_err());
    }

    #[test]
    fn encoding_metadata() {
        assert_eq!(SketchEncoding::F64.bits_per_value(), 64);
        assert_eq!(SketchEncoding::F32.bits_per_value(), 32);
        assert_eq!(SketchEncoding::Fixed16.bits_per_value(), 16);
        let e = encode(&sample(), SketchEncoding::F32);
        assert_eq!(e.encoding(), SketchEncoding::F32);
        assert_eq!(e.len(), 5);
        assert!(!e.is_empty());
    }

    #[test]
    fn quantized_sketches_still_sum_linearly() {
        // Nodes quantize independently; errors add but stay bounded, so the
        // aggregated sketch stays close to the exact one.
        let a = Vector::from_vec(vec![100.0, -50.0, 25.0]);
        let b = Vector::from_vec(vec![-80.0, 60.0, 10.0]);
        let (qa, _) = transmit(&a, SketchEncoding::Fixed16).unwrap();
        let (qb, _) = transmit(&b, SketchEncoding::Fixed16).unwrap();
        let approx = qa.add(&qb).unwrap();
        let exact = a.add(&b).unwrap();
        let bound = relative_error_bound(SketchEncoding::Fixed16) * (a.norm_inf() + b.norm_inf());
        assert!(approx.sub(&exact).unwrap().norm_inf() <= bound);
    }
}
