//! Communication-cost accounting (Section 6.1.2).
//!
//! The paper measures every protocol by `N_t · S_t`: the number of
//! transmitted tuples times the bytes per tuple, with two tuple encodings:
//!
//! - a bare **value** in a vectorized transmission: 64 bits (`S_v`);
//! - a **keyid-value pair**: 96 bits (`S_t` — a 32-bit key id plus a
//!   64-bit value).
//!
//! The meter is explicit rather than inferred so the normalized-cost axes
//! of Figures 7 and 8 are computed exactly as in the paper.

use cso_obs::Recorder;

/// Bits used to encode one bare value (the paper's `S_v` / `S_M`).
pub const VALUE_BITS: u64 = 64;
/// Bits used to encode one keyid-value pair (the paper's `S_t`).
pub const KV_PAIR_BITS: u64 = 96;

/// Accumulated communication of one protocol execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CommunicationCost {
    /// Total bits shipped node → aggregator or aggregator → node.
    pub bits: u64,
    /// Total tuples (values or pairs) shipped.
    pub tuples: u64,
    /// Number of communication rounds (the CS protocol is single-round;
    /// K+δ needs three).
    pub rounds: u32,
}

impl CommunicationCost {
    /// Total bytes (rounded up).
    pub fn bytes(&self) -> u64 {
        self.bits.div_ceil(8)
    }

    /// This cost as a fraction of `baseline` (the Figures 7/8 x-axis:
    /// "communication cost normalized by transmitting ALL"). Returns
    /// infinity against a zero baseline.
    pub fn normalized_to(&self, baseline: &CommunicationCost) -> f64 {
        if baseline.bits == 0 {
            f64::INFINITY
        } else {
            self.bits as f64 / baseline.bits as f64
        }
    }

    /// Adds this cost to the recorder's `comm.bits` / `comm.tuples` /
    /// `comm.rounds` counters. Counters accumulate, so publishing the costs
    /// of two protocol runs into one recorder sums them; publish once per
    /// finished run.
    pub fn publish(&self, rec: &Recorder) {
        rec.counter_add("comm.bits", self.bits);
        rec.counter_add("comm.tuples", self.tuples);
        rec.counter_add("comm.rounds", u64::from(self.rounds));
    }
}

/// Mutable meter protocols record into while running.
#[derive(Debug, Clone, Default)]
pub struct CostMeter {
    bits: u64,
    tuples: u64,
    rounds: u32,
    per_node_bits: Vec<u64>,
}

impl CostMeter {
    /// Fresh meter for `nodes` participants.
    pub fn new(nodes: usize) -> Self {
        CostMeter { bits: 0, tuples: 0, rounds: 0, per_node_bits: vec![0; nodes] }
    }

    /// Records `count` bare values sent by `node`.
    pub fn record_values(&mut self, node: usize, count: u64) {
        self.record_bits(node, count, VALUE_BITS);
    }

    /// Records `count` keyid-value pairs sent by `node`.
    pub fn record_kv_pairs(&mut self, node: usize, count: u64) {
        self.record_bits(node, count, KV_PAIR_BITS);
    }

    /// Records a broadcast of `count` bare values from the aggregator to
    /// every node (counted once per receiving node).
    pub fn record_broadcast_values(&mut self, count: u64) {
        let nodes = self.per_node_bits.len() as u64;
        self.bits += count * VALUE_BITS * nodes;
        self.tuples += count * nodes;
    }

    /// Records `bytes` of raw framed traffic sent by `node`. Used by the
    /// wire-level and fault-injected paths, where cost is actual encoded
    /// bytes (headers, checksums, and every retransmission attempt) rather
    /// than abstract tuples; tuple counts are tracked by the caller there.
    pub fn record_wire_bytes(&mut self, node: usize, bytes: u64) {
        assert!(node < self.per_node_bits.len(), "node {node} out of range");
        let b = bytes * 8;
        self.bits += b;
        self.per_node_bits[node] += b;
    }

    /// Marks the start of a new communication round.
    pub fn begin_round(&mut self) {
        self.rounds += 1;
    }

    fn record_bits(&mut self, node: usize, count: u64, bits_per: u64) {
        assert!(node < self.per_node_bits.len(), "node {node} out of range");
        let b = count * bits_per;
        self.bits += b;
        self.tuples += count;
        self.per_node_bits[node] += b;
    }

    /// Bits sent by one node so far.
    pub fn node_bits(&self, node: usize) -> u64 {
        self.per_node_bits[node]
    }

    /// Freezes the meter into a summary.
    pub fn finish(&self) -> CommunicationCost {
        CommunicationCost { bits: self.bits, tuples: self.tuples, rounds: self.rounds }
    }

    /// [`CommunicationCost::publish`] for a still-running meter, plus a
    /// `comm.node_bits` histogram sample per node (the per-node skew the
    /// scalar totals hide).
    pub fn publish(&self, rec: &Recorder) {
        self.finish().publish(rec);
        if rec.is_enabled() {
            for &bits in &self.per_node_bits {
                rec.histogram_record("comm.node_bits", bits);
            }
        }
    }
}

/// Closed-form cost of the trivial vectorized ALL baseline: `L·N` values
/// in one round (the paper's `L·N·S_v`).
pub fn all_vectorized_cost(l: usize, n: usize) -> CommunicationCost {
    CommunicationCost { bits: (l * n) as u64 * VALUE_BITS, tuples: (l * n) as u64, rounds: 1 }
}

/// Closed-form cost of shipping every non-zero key as a keyid-value pair:
/// `Σ nᵢ · S_t` (the paper notes this is usually *worse* than vectorized
/// on production data — "more than 3 times larger").
pub fn all_kv_cost(nonzeros_per_node: &[usize]) -> CommunicationCost {
    let total: u64 = nonzeros_per_node.iter().map(|&n| n as u64).sum();
    CommunicationCost { bits: total * KV_PAIR_BITS, tuples: total, rounds: 1 }
}

/// Closed-form cost of the CS protocol: `L·M` values in one round.
pub fn cs_cost(l: usize, m: usize) -> CommunicationCost {
    CommunicationCost { bits: (l * m) as u64 * VALUE_BITS, tuples: (l * m) as u64, rounds: 1 }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meter_accumulates_values_and_pairs() {
        let mut m = CostMeter::new(2);
        m.begin_round();
        m.record_values(0, 10);
        m.record_kv_pairs(1, 5);
        let c = m.finish();
        assert_eq!(c.bits, 10 * 64 + 5 * 96);
        assert_eq!(c.tuples, 15);
        assert_eq!(c.rounds, 1);
        assert_eq!(m.node_bits(0), 640);
        assert_eq!(m.node_bits(1), 480);
    }

    #[test]
    fn broadcast_counts_every_receiver() {
        let mut m = CostMeter::new(4);
        m.record_broadcast_values(1);
        let c = m.finish();
        assert_eq!(c.bits, 4 * 64);
        assert_eq!(c.tuples, 4);
    }

    #[test]
    fn broadcast_charges_no_individual_node() {
        // Broadcast traffic is aggregator → nodes; it must appear in the
        // totals but not in any node's uplink accounting.
        let mut m = CostMeter::new(3);
        m.record_values(1, 2);
        m.record_broadcast_values(5);
        assert_eq!(m.node_bits(0), 0);
        assert_eq!(m.node_bits(1), 2 * 64);
        assert_eq!(m.node_bits(2), 0);
        let c = m.finish();
        assert_eq!(c.bits, 2 * 64 + 5 * 64 * 3);
        assert_eq!(c.tuples, 2 + 5 * 3);
    }

    #[test]
    fn broadcast_to_zero_nodes_is_free() {
        let mut m = CostMeter::new(0);
        m.record_broadcast_values(100);
        let c = m.finish();
        assert_eq!(c.bits, 0);
        assert_eq!(c.tuples, 0);
    }

    #[test]
    fn bytes_round_up() {
        let c = CommunicationCost { bits: 65, tuples: 1, rounds: 1 };
        assert_eq!(c.bytes(), 9);
    }

    #[test]
    fn bytes_rounding_boundaries() {
        let with_bits = |bits| CommunicationCost { bits, tuples: 0, rounds: 0 };
        assert_eq!(with_bits(0).bytes(), 0);
        assert_eq!(with_bits(1).bytes(), 1);
        assert_eq!(with_bits(7).bytes(), 1);
        assert_eq!(with_bits(8).bytes(), 1);
        assert_eq!(with_bits(9).bytes(), 2);
        assert_eq!(with_bits(64).bytes(), 8);
        assert_eq!(with_bits(u64::MAX).bytes(), u64::MAX / 8 + 1);
    }

    #[test]
    fn normalized_to_zero_baseline_is_infinite() {
        let zero = CommunicationCost::default();
        let cs = cs_cost(4, 100);
        assert!(cs.normalized_to(&zero).is_infinite());
        // Zero against zero is also "infinitely worse", not NaN.
        assert!(zero.normalized_to(&zero).is_infinite());
        // And a zero-cost run against a real baseline is exactly 0.
        assert_eq!(zero.normalized_to(&cs), 0.0);
    }

    #[test]
    fn publish_mirrors_totals_into_recorder_counters() {
        let mut m = CostMeter::new(2);
        m.begin_round();
        m.record_values(0, 10);
        m.record_kv_pairs(1, 5);
        let rec = Recorder::new();
        m.publish(&rec);
        let snap = rec.metrics_snapshot();
        let c = m.finish();
        assert_eq!(snap.counter("comm.bits"), Some(c.bits));
        assert_eq!(snap.counter("comm.tuples"), Some(c.tuples));
        assert_eq!(snap.counter("comm.rounds"), Some(u64::from(c.rounds)));
        let h = snap.histogram("comm.node_bits").expect("per-node histogram");
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, c.bits);
        // Publishing to a disabled recorder is a no-op that must not panic.
        c.publish(&Recorder::disabled());
    }

    #[test]
    fn normalization_matches_paper_axes() {
        let l = 8;
        let n = 10_000;
        let m = 100;
        let all = all_vectorized_cost(l, n);
        let cs = cs_cost(l, m);
        // M/N = 1% — the Figures 7/8 x-axis value.
        assert!((cs.normalized_to(&all) - 0.01).abs() < 1e-12);
        let zero = CommunicationCost::default();
        assert!(cs.normalized_to(&zero).is_infinite());
    }

    #[test]
    fn kv_cost_exceeds_vectorized_on_dense_slices() {
        // "the communication cost of the vectorized approach is much
        // smaller than shipping keyid-value pairs" when slices are dense.
        let l = 3;
        let n = 1000;
        let dense = vec![n; l];
        assert!(all_kv_cost(&dense).bits > all_vectorized_cost(l, n).bits);
    }

    #[test]
    fn kv_cost_wins_on_very_sparse_slices() {
        let l = 3;
        let n = 1000;
        let sparse = vec![10; l];
        assert!(all_kv_cost(&sparse).bits < all_vectorized_cost(l, n).bits);
    }

    #[test]
    fn rounds_tracked_separately() {
        let mut m = CostMeter::new(1);
        m.begin_round();
        m.begin_round();
        m.begin_round();
        assert_eq!(m.finish().rounds, 3);
    }

    #[test]
    fn wire_bytes_count_bits_but_not_tuples() {
        let mut m = CostMeter::new(2);
        m.begin_round();
        m.record_wire_bytes(0, 100);
        m.record_wire_bytes(1, 50);
        let c = m.finish();
        assert_eq!(c.bits, 150 * 8);
        assert_eq!(c.tuples, 0);
        assert_eq!(m.node_bits(0), 800);
        assert_eq!(m.node_bits(1), 400);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn recording_unknown_node_panics() {
        CostMeter::new(1).record_values(1, 1);
    }
}
