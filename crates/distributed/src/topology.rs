//! Hierarchical (tree) sketch aggregation.
//!
//! The paper's protocol is star-shaped: every data center ships its sketch
//! straight to one aggregator. Geo-distributed deployments usually
//! aggregate through regional hubs instead (rack → data center → region →
//! global). Because measurement is linear (`Σ` over any grouping of the
//! slices is the same `Φ0·x`), sketches can be *summed at every interior
//! node* of an arbitrary aggregation tree without changing the recovered
//! result — and each link carries exactly `M` values regardless of how
//! many leaves sit below it, which is where the tree beats the star on
//! wide-area links.
//!
//! [`AggregationTree`] models such a topology, computes the combined
//! sketch, and accounts cost per link so star-vs-tree trade-offs can be
//! quantified.

use crate::cost::{CommunicationCost, VALUE_BITS};
use cso_core::MeasurementSpec;
use cso_linalg::{LinalgError, Vector};

/// The serve-layer tree shape: `leaves` data centers partitioned into
/// aligned regions of `fan_in` consecutive node ids, each region owned by
/// one relay that pre-sums its block and forwards a single super-node
/// sketch upstream.
///
/// `fan_in` must be a power of two so every region is an *aligned dyadic
/// block* of the node-id space — the precondition for
/// [`crate::fold::dyadic_fold`]'s composition guarantee (a region pre-sum
/// equals the flat fold's subtree value bit-for-bit). Region `g` owns
/// leaf ids `[g·fan_in, min((g+1)·fan_in, leaves))`; the last region may
/// be a partial block, which still composes because the fold skips empty
/// id ranges rather than padding them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TopologySpec {
    /// Total leaf (data-center) count across all regions.
    pub leaves: u64,
    /// Leaves per region; a power of two.
    pub fan_in: u64,
}

impl TopologySpec {
    /// Validates and builds a spec. Errors unless `fan_in` is a power of
    /// two, nonzero, and no larger than `leaves` (a tree with one region
    /// equal to the whole cluster is legal but pointless; zero leaves are
    /// not).
    pub fn new(leaves: u64, fan_in: u64) -> Result<Self, LinalgError> {
        if leaves == 0 {
            return Err(LinalgError::InvalidParameter {
                name: "leaves",
                message: "topology needs at least one leaf".into(),
            });
        }
        if fan_in == 0 || !fan_in.is_power_of_two() {
            return Err(LinalgError::InvalidParameter {
                name: "fan_in",
                message: "fan-in must be a nonzero power of two (aligned dyadic regions)".into(),
            });
        }
        if fan_in > leaves {
            return Err(LinalgError::InvalidParameter {
                name: "fan_in",
                message: "fan-in exceeds the leaf count".into(),
            });
        }
        Ok(TopologySpec { leaves, fan_in })
    }

    /// Number of regions (relays) at the leaf tier.
    pub fn region_count(&self) -> u64 {
        self.leaves.div_ceil(self.fan_in)
    }

    /// The region owning leaf id `leaf`, or `None` when out of range.
    pub fn region_of(&self, leaf: u64) -> Option<u64> {
        (leaf < self.leaves).then_some(leaf / self.fan_in)
    }

    /// The half-open leaf-id range `[lo, hi)` of `region`, or `None` when
    /// the region does not exist.
    pub fn leaf_range(&self, region: u64) -> Option<(u64, u64)> {
        (region < self.region_count())
            .then(|| (region * self.fan_in, ((region + 1) * self.fan_in).min(self.leaves)))
    }
}

/// A node in the aggregation topology.
#[derive(Debug, Clone)]
pub enum TreeNode {
    /// A data center holding a slice (identified by its cluster index).
    Leaf {
        /// Index into the cluster's slice list.
        node: usize,
    },
    /// An interior aggregator that sums its children's sketches before
    /// forwarding one `M`-length sketch upward.
    Hub {
        /// Child subtrees.
        children: Vec<TreeNode>,
    },
}

impl TreeNode {
    /// A leaf for cluster node `i`.
    pub fn leaf(node: usize) -> Self {
        TreeNode::Leaf { node }
    }

    /// A hub over the given subtrees.
    pub fn hub(children: Vec<TreeNode>) -> Self {
        TreeNode::Hub { children }
    }

    /// Leaf indices in this subtree, in traversal order.
    fn leaves(&self, out: &mut Vec<usize>) {
        match self {
            TreeNode::Leaf { node } => out.push(*node),
            TreeNode::Hub { children } => {
                for c in children {
                    c.leaves(out);
                }
            }
        }
    }

    /// Number of links in this subtree when its root forwards upward
    /// (every node except the overall root has one uplink).
    fn links(&self) -> u64 {
        match self {
            TreeNode::Leaf { .. } => 0,
            TreeNode::Hub { children } => {
                children.len() as u64 + children.iter().map(|c| c.links()).sum::<u64>()
            }
        }
    }
}

/// An aggregation topology rooted at the global aggregator.
#[derive(Debug, Clone)]
pub struct AggregationTree {
    root: TreeNode,
}

impl AggregationTree {
    /// Builds a tree. The root must be a hub (the global aggregator), every
    /// cluster node must appear exactly once as a leaf, and `expected_nodes`
    /// is the cluster's `L`.
    pub fn new(root: TreeNode, expected_nodes: usize) -> Result<Self, LinalgError> {
        if matches!(root, TreeNode::Leaf { .. }) {
            return Err(LinalgError::InvalidParameter {
                name: "root",
                message: "the root must be an aggregator hub".into(),
            });
        }
        let mut leaves = Vec::new();
        root.leaves(&mut leaves);
        let mut sorted = leaves.clone();
        sorted.sort_unstable();
        sorted.dedup();
        if sorted.len() != leaves.len() {
            return Err(LinalgError::InvalidParameter {
                name: "root",
                message: "a cluster node appears more than once".into(),
            });
        }
        if sorted.len() != expected_nodes
            || sorted.first() != Some(&0)
            || sorted.last() != Some(&(expected_nodes - 1))
        {
            return Err(LinalgError::InvalidParameter {
                name: "root",
                message: "leaves must cover cluster nodes 0..L exactly".into(),
            });
        }
        Ok(AggregationTree { root })
    }

    /// The flat star topology (every node a direct child of the root).
    pub fn star(l: usize) -> Result<Self, LinalgError> {
        Self::new(TreeNode::hub((0..l).map(TreeNode::leaf).collect()), l)
    }

    /// A two-level topology: nodes grouped into hubs of `group` leaves.
    pub fn two_level(l: usize, group: usize) -> Result<Self, LinalgError> {
        if group == 0 {
            return Err(LinalgError::InvalidParameter {
                name: "group",
                message: "group size must be positive".into(),
            });
        }
        let hubs: Vec<TreeNode> = (0..l)
            .collect::<Vec<_>>()
            .chunks(group)
            .map(|chunk| TreeNode::hub(chunk.iter().map(|&i| TreeNode::leaf(i)).collect()))
            .collect();
        Self::new(TreeNode::hub(hubs), l)
    }

    /// Number of links (every non-root node forwards one sketch).
    pub fn links(&self) -> u64 {
        self.root.links()
    }

    /// Aggregates the per-node sketches up the tree, returning the global
    /// measurement and the exact communication cost: `links · M` values,
    /// one round per tree depth.
    pub fn aggregate(
        &self,
        spec: &MeasurementSpec,
        sketches: &[Vector],
    ) -> Result<(Vector, CommunicationCost), LinalgError> {
        for s in sketches {
            if s.len() != spec.m {
                return Err(LinalgError::DimensionMismatch {
                    op: "tree_aggregate",
                    expected: (spec.m, 1),
                    actual: (s.len(), 1),
                });
            }
        }
        let y = self.sum(&self.root, spec, sketches)?;
        let cost = CommunicationCost {
            bits: self.links() * spec.m as u64 * VALUE_BITS,
            tuples: self.links() * spec.m as u64,
            rounds: self.depth(&self.root) as u32,
        };
        Ok((y, cost))
    }

    fn sum(
        &self,
        node: &TreeNode,
        spec: &MeasurementSpec,
        sketches: &[Vector],
    ) -> Result<Vector, LinalgError> {
        match node {
            TreeNode::Leaf { node } => {
                sketches.get(*node).cloned().ok_or(LinalgError::InvalidParameter {
                    name: "sketches",
                    message: "missing sketch for a leaf node".into(),
                })
            }
            TreeNode::Hub { children } => {
                let mut acc = Vector::zeros(spec.m);
                for c in children {
                    acc.add_assign(&self.sum(c, spec, sketches)?)?;
                }
                Ok(acc)
            }
        }
    }

    fn depth(&self, node: &TreeNode) -> usize {
        match node {
            TreeNode::Leaf { .. } => 0,
            TreeNode::Hub { children } => {
                1 + children.iter().map(|c| self.depth(c)).max().unwrap_or(0)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cso_core::{bomp_with_matrix, BompConfig};

    fn sketches(spec: &MeasurementSpec, slices: &[Vec<f64>]) -> Vec<Vector> {
        slices.iter().map(|s| spec.measure_dense(s).unwrap()).collect()
    }

    fn slices() -> Vec<Vec<f64>> {
        let mut x = vec![700.0; 300];
        x[42] = 9000.0;
        x[200] = -4000.0;
        cso_workloads::split(&x, 6, cso_workloads::SliceStrategy::RandomProportions, 3).unwrap()
    }

    #[test]
    fn tree_and_star_produce_identical_measurements() {
        let spec = MeasurementSpec::new(80, 300, 11).unwrap();
        let sl = slices();
        let ys = sketches(&spec, &sl);
        let star = AggregationTree::star(6).unwrap();
        let tree = AggregationTree::two_level(6, 2).unwrap();
        let (y_star, _) = star.aggregate(&spec, &ys).unwrap();
        let (y_tree, _) = tree.aggregate(&spec, &ys).unwrap();
        // Exact linearity: only summation order differs.
        let scale = y_star.norm2().max(1.0);
        assert!(y_star.sub(&y_tree).unwrap().norm2() / scale < 1e-12);
        // And recovery agrees with the ground truth either way.
        let phi0 = spec.materialize();
        let r = bomp_with_matrix(&phi0, &y_tree, &BompConfig::default()).unwrap();
        assert!((r.mode - 700.0).abs() < 1e-6);
        assert_eq!(r.top_k(1)[0].index, 42);
    }

    #[test]
    fn link_and_round_accounting() {
        let star = AggregationTree::star(6).unwrap();
        assert_eq!(star.links(), 6);
        let tree = AggregationTree::two_level(6, 2).unwrap();
        // 6 leaf uplinks + 3 hub uplinks.
        assert_eq!(tree.links(), 9);
        let spec = MeasurementSpec::new(10, 300, 1).unwrap();
        let ys = sketches(&spec, &slices());
        let (_, star_cost) = star.aggregate(&spec, &ys).unwrap();
        let (_, tree_cost) = tree.aggregate(&spec, &ys).unwrap();
        assert_eq!(star_cost.bits, 6 * 10 * 64);
        assert_eq!(tree_cost.bits, 9 * 10 * 64);
        assert_eq!(star_cost.rounds, 1);
        assert_eq!(tree_cost.rounds, 2);
    }

    #[test]
    fn validates_topology() {
        // Root must be a hub.
        assert!(AggregationTree::new(TreeNode::leaf(0), 1).is_err());
        // Duplicate leaf.
        assert!(AggregationTree::new(TreeNode::hub(vec![TreeNode::leaf(0), TreeNode::leaf(0)]), 2)
            .is_err());
        // Missing leaf.
        assert!(AggregationTree::new(TreeNode::hub(vec![TreeNode::leaf(0)]), 2).is_err());
        // Out-of-range leaf.
        assert!(AggregationTree::new(TreeNode::hub(vec![TreeNode::leaf(0), TreeNode::leaf(5)]), 2)
            .is_err());
        assert!(AggregationTree::two_level(4, 0).is_err());
    }

    #[test]
    fn aggregate_validates_sketches() {
        let spec = MeasurementSpec::new(10, 50, 1).unwrap();
        let star = AggregationTree::star(2).unwrap();
        // Wrong sketch length.
        assert!(star.aggregate(&spec, &[Vector::zeros(10), Vector::zeros(9)]).is_err());
        // Missing sketch.
        assert!(star.aggregate(&spec, &[Vector::zeros(10)]).is_err());
    }
}
