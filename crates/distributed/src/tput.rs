//! TPUT — Cao & Wang's three-round top-k protocol.
//!
//! The Section 7.1 baseline the paper's K+δ is modelled on: "Inspired by
//! Fagin's work, Pei Cao and Zhe Wang proposed the TPUT algorithm, which
//! consists of three rounds: i) estimate the lower bound of the kth value,
//! ii) prune keys using the lower bound and iii) exact top-k refinement."
//!
//! 1. **Estimate**: every node ships its local top-k; the aggregator sums
//!    what it received and sets `τ1 = (k-th partial sum) / L`.
//! 2. **Prune**: nodes ship every key whose local value exceeds `τ1`; keys
//!    whose optimistic upper bound (received sum + τ1 per silent node)
//!    stays below the k-th lower bound are pruned.
//! 3. **Refine**: exact values of surviving candidates are fetched from
//!    all nodes; the exact top-k among candidates is returned.
//!
//! Like TA, TPUT is exact **only for non-negative data** — the pruning
//! bound assumes every unseen contribution is ≥ 0, which is precisely why
//! the paper says these protocols "cannot be easily adapted to the
//! k-outlier problem" over `R^N`.

use crate::cluster::Cluster;
use crate::cost::CostMeter;
use cso_core::KeyValue;
use cso_linalg::LinalgError;
use std::collections::{HashMap, HashSet};

/// Result of a TPUT execution.
#[derive(Debug, Clone)]
pub struct TputRun {
    /// The exact top-k keys by aggregated value, descending.
    pub topk: Vec<KeyValue>,
    /// Communication cost over the three rounds.
    pub cost: crate::cost::CommunicationCost,
    /// Candidates that survived phase-2 pruning.
    pub candidates: usize,
}

/// The TPUT three-round protocol.
#[derive(Debug, Clone, Copy, Default)]
pub struct TputProtocol;

impl TputProtocol {
    /// Runs TPUT for the exact top-k over non-negative data. Errors on
    /// negative values or `k == 0`.
    pub fn run_topk(&self, cluster: &Cluster, k: usize) -> Result<TputRun, LinalgError> {
        if k == 0 {
            return Err(LinalgError::InvalidParameter {
                name: "k",
                message: "k must be >= 1".into(),
            });
        }
        let l = cluster.l();
        for node in 0..l {
            if cluster.slice(node).iter().any(|&v| v < 0.0) {
                return Err(LinalgError::InvalidParameter {
                    name: "slice",
                    message: "TPUT requires non-negative values (see Section 7.1)".into(),
                });
            }
        }
        let mut meter = CostMeter::new(l);

        // Per-node descending lists.
        let sorted: Vec<Vec<(usize, f64)>> = (0..l)
            .map(|node| {
                let mut v: Vec<(usize, f64)> =
                    cluster.slice(node).iter().copied().enumerate().collect();
                v.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite").then(a.0.cmp(&b.0)));
                v
            })
            .collect();

        // Round 1: local top-k from every node. Contributions accumulate
        // into `received`, with `seen_by` tracking which node reported
        // which key so round 2 never double-counts.
        meter.begin_round();
        let mut received: HashMap<usize, f64> = HashMap::new();
        let mut seen_by: HashMap<usize, HashSet<usize>> = HashMap::new();
        for (node, list) in sorted.iter().enumerate() {
            for &(key, value) in list.iter().take(k) {
                *received.entry(key).or_insert(0.0) += value;
                seen_by.entry(key).or_default().insert(node);
                meter.record_kv_pairs(node, 1);
            }
        }
        let mut partial_sorted: Vec<f64> = received.values().copied().collect();
        partial_sorted.sort_by(|a, b| b.partial_cmp(a).expect("finite"));
        let phase1_kth = partial_sorted.get(k - 1).copied().unwrap_or(0.0);
        let tau1 = phase1_kth / l as f64;

        // Round 2: every node ships its not-yet-reported keys with local
        // value ≥ τ1 (the aggregator broadcasts τ1 first).
        meter.begin_round();
        meter.record_broadcast_values(1);
        for (node, list) in sorted.iter().enumerate() {
            for &(key, value) in list.iter() {
                if value < tau1 {
                    break; // sorted: all further values are < τ1
                }
                if seen_by.entry(key).or_default().insert(node) {
                    *received.entry(key).or_insert(0.0) += value;
                    meter.record_kv_pairs(node, 1);
                }
            }
        }
        // New lower bound on the k-th total from round-2 sums.
        let mut sums: Vec<f64> = received.values().copied().collect();
        sums.sort_by(|a, b| b.partial_cmp(a).expect("finite"));
        let lower_kth = sums.get(k - 1).copied().unwrap_or(0.0);

        // Prune: upper bound = received sum + τ1 for every silent node.
        let candidates: Vec<usize> = received
            .iter()
            .filter(|(key, &sum)| {
                let reported = seen_by.get(*key).map_or(0, |s| s.len());
                let upper = sum + tau1 * (l - reported) as f64;
                upper >= lower_kth
            })
            .map(|(&key, _)| key)
            .collect();

        // Round 3: exact refinement of survivors.
        meter.begin_round();
        let mut exact: Vec<KeyValue> = candidates
            .iter()
            .map(|&key| {
                let mut value = 0.0;
                for node in 0..l {
                    value += cluster.slice(node)[key];
                    meter.record_kv_pairs(node, 1);
                }
                KeyValue { index: key, value }
            })
            .collect();
        exact.sort_by(|a, b| {
            b.value.partial_cmp(&a.value).expect("finite").then(a.index.cmp(&b.index))
        });
        exact.truncate(k);

        Ok(TputRun { topk: exact, cost: meter.finish(), candidates: candidates.len() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ta::TaProtocol;
    use cso_workloads::{split, SliceStrategy};

    fn nonneg_cluster(seed: u64) -> (Cluster, Vec<f64>) {
        // Distinct values (the tiny index-scaled term breaks ties).
        let mut x: Vec<f64> =
            (0..300).map(|i| ((i * 6151) % 83) as f64 + i as f64 * 1e-6).collect();
        x[13] = 9000.0;
        x[77] = 7000.0;
        x[150] = 5000.0;
        x[299] = 4000.0;
        let slices = split(&x, 5, SliceStrategy::RandomProportions, seed).unwrap();
        (Cluster::new(slices).unwrap(), x)
    }

    #[test]
    fn tput_is_exact_on_nonnegative_data() {
        let (cluster, x) = nonneg_cluster(1);
        let run = TputProtocol.run_topk(&cluster, 4).unwrap();
        let keys: Vec<usize> = run.topk.iter().map(|o| o.index).collect();
        assert_eq!(keys, vec![13, 77, 150, 299]);
        for o in &run.topk {
            assert!((o.value - x[o.index]).abs() < 1e-9);
        }
    }

    #[test]
    fn tput_agrees_with_ta() {
        for seed in [2u64, 3, 4] {
            let (cluster, _) = nonneg_cluster(seed);
            let tput = TputProtocol.run_topk(&cluster, 5).unwrap();
            let ta = TaProtocol.run_topk(&cluster, 5).unwrap();
            let a: Vec<usize> = tput.topk.iter().map(|o| o.index).collect();
            let b: Vec<usize> = ta.topk.iter().map(|o| o.index).collect();
            assert_eq!(a, b, "seed {seed}");
        }
    }

    #[test]
    fn tput_runs_exactly_three_rounds() {
        let (cluster, _) = nonneg_cluster(5);
        let run = TputProtocol.run_topk(&cluster, 3).unwrap();
        assert_eq!(run.cost.rounds, 3);
    }

    #[test]
    fn tput_prunes_most_keys() {
        let (cluster, _) = nonneg_cluster(6);
        let run = TputProtocol.run_topk(&cluster, 3).unwrap();
        assert!(
            run.candidates < cluster.n() / 2,
            "pruning should eliminate most of the {} keys, kept {}",
            cluster.n(),
            run.candidates
        );
    }

    #[test]
    fn tput_rejects_negative_values_and_zero_k() {
        let cluster = Cluster::new(vec![vec![1.0, -1.0]]).unwrap();
        assert!(TputProtocol.run_topk(&cluster, 1).is_err());
        let (ok, _) = nonneg_cluster(7);
        assert!(TputProtocol.run_topk(&ok, 0).is_err());
    }

    #[test]
    fn tput_cheaper_than_ta_on_deep_instances() {
        // TPUT's fixed three rounds vs TA's per-depth rounds: on data where
        // TA must dig deep, TPUT ships fewer tuples.
        let x: Vec<f64> = (0..400).map(|i| 100.0 + (i % 7) as f64).collect();
        let slices = split(&x, 6, SliceStrategy::RandomProportions, 9).unwrap();
        let cluster = Cluster::new(slices).unwrap();
        let ta = TaProtocol.run_topk(&cluster, 5).unwrap();
        let tput = TputProtocol.run_topk(&cluster, 5).unwrap();
        assert!(tput.cost.rounds < ta.cost.rounds);
    }
}
