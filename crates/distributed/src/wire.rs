//! Wire format for protocol messages.
//!
//! The cost meter (Section 6.1.2's accounting) prices tuples abstractly;
//! this module makes the transport concrete: a small, versioned, little-
//! endian binary format for the three message kinds the protocols exchange.
//! Tests cross-check the encoded byte counts against the abstract
//! accounting, so the normalized-cost figures rest on real byte layouts.
//!
//! Every frame carries a CRC-32 trailer over the body. [`decode`] verifies
//! the checksum *before* touching the body, so a corrupted length field or
//! flipped payload bit is rejected outright instead of producing a garbage
//! sketch — the integrity property the fault-injection harness
//! ([`crate::fault`]) leans on.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! [0]        u8   message tag (1 = sketch, 2 = kv batch, 3 = mode broadcast,
//!                 4 = open epoch, 5 = seal epoch, 6 = recover epoch,
//!                 7 = ack, 8 = reject, 9 = report, 10 = epoch status query,
//!                 11 = status reply, 12 = introspect query,
//!                 13 = metrics reply)
//! [1]        u8   format version (currently 2)
//! ...             tag-specific body
//! [len-4..]  u32  CRC-32 (IEEE) over bytes [0, len-4)
//! ```
//!
//! Tags 1–3 are the original simulation messages; tags 4–9 are the serving
//! layer's control plane (`cso-serve`): session/epoch lifecycle requests
//! from clients and the server's acknowledgement / rejection / recovery-
//! report replies. Tags 12–13 are the in-band telemetry plane: a stateless
//! [`Message::Introspect`] poll answered by a [`Message::MetricsReply`]
//! carrying a full [`MetricsSnapshot`] (the client windows consecutive
//! replies via `MetricsSnapshot::delta`). They all ride the same version-2
//! CRC-sealed frames, so the corruption guarantees below apply to the
//! control and telemetry planes too.

use crate::quantize::{EncodedSketch, SketchEncoding};
use cso_obs::metrics::{Histogram, MetricsSnapshot};
use std::fmt;

/// Current format version. Version 2 added the CRC-32 trailer.
pub const WIRE_VERSION: u8 = 2;

/// Bytes of the CRC-32 trailer appended to every frame.
pub const CHECKSUM_BYTES: usize = 4;

/// Frame tag of [`Message::Sketch`].
pub const TAG_SKETCH: u8 = 1;
/// Frame tag of [`Message::KvBatch`].
pub const TAG_KV_BATCH: u8 = 2;
/// Frame tag of [`Message::ModeBroadcast`].
pub const TAG_MODE: u8 = 3;
/// Frame tag of [`Message::OpenEpoch`].
pub const TAG_OPEN_EPOCH: u8 = 4;
/// Frame tag of [`Message::SealEpoch`].
pub const TAG_SEAL_EPOCH: u8 = 5;
/// Frame tag of [`Message::RecoverEpoch`].
pub const TAG_RECOVER_EPOCH: u8 = 6;
/// Frame tag of [`Message::Ack`].
pub const TAG_ACK: u8 = 7;
/// Frame tag of [`Message::Reject`].
pub const TAG_REJECT: u8 = 8;
/// Frame tag of [`Message::Report`].
pub const TAG_REPORT: u8 = 9;
/// Frame tag of [`Message::EpochStatus`].
pub const TAG_EPOCH_STATUS: u8 = 10;
/// Frame tag of [`Message::Status`].
pub const TAG_STATUS: u8 = 11;
/// Frame tag of [`Message::Introspect`].
pub const TAG_INTROSPECT: u8 = 12;
/// Frame tag of [`Message::MetricsReply`].
pub const TAG_METRICS_REPLY: u8 = 13;
/// Frame tag of [`Message::RelayManifest`].
pub const TAG_RELAY_MANIFEST: u8 = 14;

/// IEEE CRC-32 lookup table (reflected, polynomial `0xEDB88320`).
const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut bit = 0;
        while bit < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            bit += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// IEEE CRC-32 of `bytes` (the common zlib/Ethernet variant).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC32_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// A message a node or the aggregator puts on the wire.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// A node's local measurement `y_l` (possibly quantized).
    Sketch {
        /// Sending node id.
        node: u32,
        /// Seed the node derived `Φ0` from (lets the aggregator verify
        /// configuration agreement).
        seed: u64,
        /// The measurement payload.
        payload: EncodedSketch,
    },
    /// A batch of keyid-value pairs (baselines, K+δ rounds 1/3).
    KvBatch {
        /// Sending node id.
        node: u32,
        /// `(key id, value)` pairs.
        pairs: Vec<(u32, f64)>,
    },
    /// The aggregator's mode broadcast (K+δ round 2).
    ModeBroadcast {
        /// Estimated mode.
        mode: f64,
    },
    /// Client → server: open (or attach to) an epoch of a session. Carries
    /// the full measurement configuration so the server can verify that
    /// every participant derives the same `Φ0`.
    OpenEpoch {
        /// Session (run) id the epoch belongs to.
        session: u64,
        /// Epoch number within the session.
        epoch: u64,
        /// Sketch length `M`.
        m: u32,
        /// Key-space size `N`.
        n: u64,
        /// Shared seed `Φ0` is derived from.
        seed: u64,
        /// Measurement-operator backend code (`cso_core::OpKind::code`):
        /// 0 = dense Gaussian, 1 = SRHT, 2 = seeded sparse. Unknown codes
        /// are rejected by the server with `RejectCode::BadOperator`.
        op_kind: u8,
        /// Backend parameter (`s` for the seeded-sparse backend; must be 0
        /// otherwise).
        op_param: u64,
    },
    /// Client → server: no more sketches for this epoch; freeze the
    /// membership for recovery.
    SealEpoch {
        /// Session id.
        session: u64,
        /// Epoch number.
        epoch: u64,
    },
    /// Client → server: recover the top-`k` outliers of a sealed epoch.
    RecoverEpoch {
        /// Session id.
        session: u64,
        /// Epoch number.
        epoch: u64,
        /// Outlier budget `k`.
        k: u32,
    },
    /// Server → client: the request identified by `of` (a message tag)
    /// succeeded. `info` is tag-specific (accepted-sketch node count for
    /// seals, 0/1 duplicate flag for sketches).
    Ack {
        /// Tag of the message being acknowledged.
        of: u8,
        /// Tag-specific detail.
        info: u64,
    },
    /// Server → client: the request was refused. `code` is a
    /// `cso-serve` reject code (typed protocol error or backpressure);
    /// `retry_after_ms` is non-zero when the client should retry later
    /// (admission-queue backpressure).
    Reject {
        /// Typed reject code (see `cso-serve`'s `RejectCode`).
        code: u16,
        /// Suggested retry delay in milliseconds (0 = do not retry).
        retry_after_ms: u32,
    },
    /// Server → client: recovery report for one epoch.
    Report {
        /// Epoch the report describes.
        epoch: u64,
        /// Recovered mode `b`.
        mode: f64,
        /// Recovered `(key id, value)` outliers, ordered by decreasing
        /// deviation from the mode.
        outliers: Vec<(u32, f64)>,
    },
    /// Client → server: where is this epoch in its lifecycle? The query a
    /// client uses to resume idempotent ingest after a connection loss or
    /// a server restart — it tells the client whether the epoch still
    /// exists, whether it is still accepting sketches, and how many nodes
    /// the server already holds.
    EpochStatus {
        /// Session id.
        session: u64,
        /// Epoch number.
        epoch: u64,
    },
    /// Server → client: reply to [`Message::EpochStatus`].
    Status {
        /// Epoch the status describes.
        epoch: u64,
        /// Lifecycle phase (0 = ingesting, 1 = sealed, 2 = recovered; see
        /// `cso-serve`'s `EpochPhase`).
        phase: u8,
        /// Nodes currently contributing to (or frozen into) the epoch.
        nodes: u64,
    },
    /// Client → server: report your live metrics. Stateless and read-only
    /// — the server answers from its metrics registry without touching the
    /// session store, so polling never perturbs ingest or recovery.
    Introspect,
    /// Server → client: reply to [`Message::Introspect`] — a full
    /// cumulative [`MetricsSnapshot`] (versioned, stamped with the
    /// registry's monotone snapshot sequence). Pollers difference
    /// consecutive replies with `MetricsSnapshot::delta` to obtain
    /// windowed rates and latency percentiles.
    MetricsReply {
        /// The server's cumulative metrics at reply time.
        snapshot: MetricsSnapshot,
    },
    /// Relay → upstream server: declare the subtree this connection
    /// forwards for. Sent after `OpenEpoch`, before the region's single
    /// pre-summed super-node sketch. The upstream validates the claim
    /// against the epoch's topology (first manifest wins the `fan_in`;
    /// every later one must agree) and rejects inconsistencies with the
    /// typed `TopologyMismatch`/`RegionConflict` codes instead of letting
    /// a misconfigured relay silently corrupt the fold.
    RelayManifest {
        /// Session id.
        session: u64,
        /// Epoch number.
        epoch: u64,
        /// Region id — also the super-node id the relay ingests under.
        region: u32,
        /// First absolute leaf id of the region's aligned block.
        leaf_lo: u64,
        /// One past the last absolute leaf id of the block.
        leaf_hi: u64,
        /// The topology's leaves-per-region (a power of two).
        fan_in: u64,
    },
}

impl Message {
    /// The message's wire tag — the discriminant byte [`encode`] writes.
    /// Server acknowledgements echo this in [`Message::Ack`]'s `of` field
    /// so a client can match replies to requests.
    pub fn tag(&self) -> u8 {
        match self {
            Message::Sketch { .. } => TAG_SKETCH,
            Message::KvBatch { .. } => TAG_KV_BATCH,
            Message::ModeBroadcast { .. } => TAG_MODE,
            Message::OpenEpoch { .. } => TAG_OPEN_EPOCH,
            Message::SealEpoch { .. } => TAG_SEAL_EPOCH,
            Message::RecoverEpoch { .. } => TAG_RECOVER_EPOCH,
            Message::Ack { .. } => TAG_ACK,
            Message::Reject { .. } => TAG_REJECT,
            Message::Report { .. } => TAG_REPORT,
            Message::EpochStatus { .. } => TAG_EPOCH_STATUS,
            Message::Status { .. } => TAG_STATUS,
            Message::Introspect => TAG_INTROSPECT,
            Message::MetricsReply { .. } => TAG_METRICS_REPLY,
            Message::RelayManifest { .. } => TAG_RELAY_MANIFEST,
        }
    }
}

/// Decode failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the message did.
    Truncated,
    /// Unknown message tag.
    UnknownTag(u8),
    /// The frame's format version differs from the one this decoder speaks.
    VersionMismatch {
        /// Version byte found in the frame.
        got: u8,
        /// Version this decoder implements.
        want: u8,
    },
    /// Unknown sketch-encoding discriminant.
    BadEncoding(u8),
    /// A field carried a value outside its domain (e.g. a histogram
    /// bucket index past the fixed log₂ bucket count).
    BadField {
        /// Which field was out of domain.
        field: &'static str,
        /// The raw value received.
        value: u64,
    },
    /// The CRC-32 trailer disagrees with the body — the frame was corrupted
    /// in flight.
    ChecksumMismatch {
        /// Checksum carried in the trailer.
        stored: u32,
        /// Checksum computed over the received body.
        computed: u32,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "message truncated"),
            WireError::UnknownTag(t) => write!(f, "unknown message tag {t}"),
            WireError::VersionMismatch { got, want } => {
                write!(f, "wire version mismatch: frame says {got}, decoder speaks {want}")
            }
            WireError::BadEncoding(e) => write!(f, "unknown sketch encoding {e}"),
            WireError::BadField { field, value } => {
                write!(f, "field {field} out of domain: {value}")
            }
            WireError::ChecksumMismatch { stored, computed } => write!(
                f,
                "checksum mismatch: frame carries {stored:#010x}, body hashes to {computed:#010x}"
            ),
        }
    }
}

impl std::error::Error for WireError {}

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn new() -> Self {
        Writer { buf: Vec::new() }
    }
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn f32(&mut self, v: f32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn i16(&mut self, v: i16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    /// A metric name behind a u16 length prefix (names beyond 64 KiB are
    /// truncated byte-wise — far past anything the taxonomy produces).
    fn str16(&mut self, s: &str) {
        let bytes = &s.as_bytes()[..s.len().min(usize::from(u16::MAX))];
        self.u16(bytes.len() as u16);
        self.buf.extend_from_slice(bytes);
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }
    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.pos + n > self.buf.len() {
            return Err(WireError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }
    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }
    fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }
    fn f32(&mut self) -> Result<f32, WireError> {
        Ok(f32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }
    fn i16(&mut self) -> Result<i16, WireError> {
        Ok(i16::from_le_bytes(self.take(2)?.try_into().expect("2 bytes")))
    }
    fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2 bytes")))
    }
    /// A u16-length-prefixed metric name. Non-UTF-8 bytes decode lossily
    /// (the CRC rejects in-flight corruption; this guards resealed or
    /// hostile frames without a panic).
    fn str16(&mut self) -> Result<String, WireError> {
        let len = usize::from(self.u16()?);
        Ok(String::from_utf8_lossy(self.take(len)?).into_owned())
    }
    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }
    fn finished(&self) -> bool {
        self.pos == self.buf.len()
    }
}

/// Caps an element count declared by a length field to what the rest of the
/// buffer could actually hold, so a corrupt count can never drive a huge
/// allocation (the checksum rejects such frames, but `decode` stays safe on
/// arbitrary bytes regardless).
fn capped(declared: usize, remaining_bytes: usize, elem_bytes: usize) -> usize {
    declared.min(remaining_bytes / elem_bytes.max(1))
}

fn encoding_tag(e: SketchEncoding) -> u8 {
    match e {
        SketchEncoding::F64 => 0,
        SketchEncoding::F32 => 1,
        SketchEncoding::Fixed16 => 2,
    }
}

/// Serializes a message, sealing it with the CRC-32 trailer.
pub fn encode(msg: &Message) -> Vec<u8> {
    let mut w = Writer::new();
    match msg {
        Message::Sketch { node, seed, payload } => {
            w.u8(TAG_SKETCH);
            w.u8(WIRE_VERSION);
            w.u32(*node);
            w.u64(*seed);
            w.u8(encoding_tag(payload.encoding()));
            w.u32(payload.len() as u32);
            match payload {
                EncodedSketch::F64(v) => v.iter().for_each(|&x| w.f64(x)),
                EncodedSketch::F32(v) => v.iter().for_each(|&x| w.f32(x)),
                EncodedSketch::Fixed16 { values, scale } => {
                    w.f64(*scale);
                    values.iter().for_each(|&x| w.i16(x));
                }
            }
        }
        Message::KvBatch { node, pairs } => {
            w.u8(TAG_KV_BATCH);
            w.u8(WIRE_VERSION);
            w.u32(*node);
            w.u32(pairs.len() as u32);
            for &(k, v) in pairs {
                w.u32(k);
                w.f64(v);
            }
        }
        Message::ModeBroadcast { mode } => {
            w.u8(TAG_MODE);
            w.u8(WIRE_VERSION);
            w.f64(*mode);
        }
        Message::OpenEpoch { session, epoch, m, n, seed, op_kind, op_param } => {
            w.u8(TAG_OPEN_EPOCH);
            w.u8(WIRE_VERSION);
            w.u64(*session);
            w.u64(*epoch);
            w.u32(*m);
            w.u64(*n);
            w.u64(*seed);
            w.u8(*op_kind);
            w.u64(*op_param);
        }
        Message::SealEpoch { session, epoch } => {
            w.u8(TAG_SEAL_EPOCH);
            w.u8(WIRE_VERSION);
            w.u64(*session);
            w.u64(*epoch);
        }
        Message::RecoverEpoch { session, epoch, k } => {
            w.u8(TAG_RECOVER_EPOCH);
            w.u8(WIRE_VERSION);
            w.u64(*session);
            w.u64(*epoch);
            w.u32(*k);
        }
        Message::Ack { of, info } => {
            w.u8(TAG_ACK);
            w.u8(WIRE_VERSION);
            w.u8(*of);
            w.u64(*info);
        }
        Message::Reject { code, retry_after_ms } => {
            w.u8(TAG_REJECT);
            w.u8(WIRE_VERSION);
            w.u16(*code);
            w.u32(*retry_after_ms);
        }
        Message::Report { epoch, mode, outliers } => {
            w.u8(TAG_REPORT);
            w.u8(WIRE_VERSION);
            w.u64(*epoch);
            w.f64(*mode);
            w.u32(outliers.len() as u32);
            for &(k, v) in outliers {
                w.u32(k);
                w.f64(v);
            }
        }
        Message::EpochStatus { session, epoch } => {
            w.u8(TAG_EPOCH_STATUS);
            w.u8(WIRE_VERSION);
            w.u64(*session);
            w.u64(*epoch);
        }
        Message::Status { epoch, phase, nodes } => {
            w.u8(TAG_STATUS);
            w.u8(WIRE_VERSION);
            w.u64(*epoch);
            w.u8(*phase);
            w.u64(*nodes);
        }
        Message::Introspect => {
            w.u8(TAG_INTROSPECT);
            w.u8(WIRE_VERSION);
        }
        Message::MetricsReply { snapshot } => {
            w.u8(TAG_METRICS_REPLY);
            w.u8(WIRE_VERSION);
            w.u32(snapshot.version);
            w.u64(snapshot.seq);
            w.u32(snapshot.counters.len() as u32);
            for (name, &v) in &snapshot.counters {
                w.str16(name);
                w.u64(v);
            }
            w.u32(snapshot.gauges.len() as u32);
            for (name, &v) in &snapshot.gauges {
                w.str16(name);
                w.f64(v);
            }
            w.u32(snapshot.histograms.len() as u32);
            for (name, h) in &snapshot.histograms {
                w.str16(name);
                w.u64(h.count);
                w.u64(h.sum);
                w.u64(h.min);
                w.u64(h.max);
                // Buckets travel sparse: log₂ histograms of latency-shaped
                // data occupy a handful of the 65 slots.
                let nonzero: Vec<(usize, u64)> =
                    h.buckets.iter().copied().enumerate().filter(|&(_, c)| c > 0).collect();
                w.u8(nonzero.len() as u8);
                for (idx, c) in nonzero {
                    w.u8(idx as u8);
                    w.u64(c);
                }
            }
        }
        Message::RelayManifest { session, epoch, region, leaf_lo, leaf_hi, fan_in } => {
            w.u8(TAG_RELAY_MANIFEST);
            w.u8(WIRE_VERSION);
            w.u64(*session);
            w.u64(*epoch);
            w.u32(*region);
            w.u64(*leaf_lo);
            w.u64(*leaf_hi);
            w.u64(*fan_in);
        }
    }
    let sum = crc32(&w.buf);
    w.u32(sum);
    w.buf
}

/// Deserializes a message, requiring the buffer to contain exactly one
/// checksum-sealed frame. The CRC is verified before any of the body is
/// interpreted.
pub fn decode(buf: &[u8]) -> Result<Message, WireError> {
    // Smallest legal frame: tag + version + CRC trailer.
    if buf.len() < 2 + CHECKSUM_BYTES {
        return Err(WireError::Truncated);
    }
    let (body, trailer) = buf.split_at(buf.len() - CHECKSUM_BYTES);
    let stored = u32::from_le_bytes(trailer.try_into().expect("4 bytes"));
    let computed = crc32(body);
    if stored != computed {
        return Err(WireError::ChecksumMismatch { stored, computed });
    }

    let mut r = Reader::new(body);
    let tag = r.u8()?;
    let version = r.u8()?;
    if version != WIRE_VERSION {
        return Err(WireError::VersionMismatch { got: version, want: WIRE_VERSION });
    }
    let msg = match tag {
        TAG_SKETCH => {
            let node = r.u32()?;
            let seed = r.u64()?;
            let enc = r.u8()?;
            let len = r.u32()? as usize;
            let payload = match enc {
                0 => {
                    let mut v = Vec::with_capacity(capped(len, r.remaining(), 8));
                    for _ in 0..len {
                        v.push(r.f64()?);
                    }
                    EncodedSketch::F64(v)
                }
                1 => {
                    let mut v = Vec::with_capacity(capped(len, r.remaining(), 4));
                    for _ in 0..len {
                        v.push(r.f32()?);
                    }
                    EncodedSketch::F32(v)
                }
                2 => {
                    let scale = r.f64()?;
                    let mut values = Vec::with_capacity(capped(len, r.remaining(), 2));
                    for _ in 0..len {
                        values.push(r.i16()?);
                    }
                    EncodedSketch::Fixed16 { values, scale }
                }
                other => return Err(WireError::BadEncoding(other)),
            };
            Message::Sketch { node, seed, payload }
        }
        TAG_KV_BATCH => {
            let node = r.u32()?;
            let len = r.u32()? as usize;
            let mut pairs = Vec::with_capacity(capped(len, r.remaining(), 12));
            for _ in 0..len {
                let k = r.u32()?;
                let v = r.f64()?;
                pairs.push((k, v));
            }
            Message::KvBatch { node, pairs }
        }
        TAG_MODE => Message::ModeBroadcast { mode: r.f64()? },
        TAG_OPEN_EPOCH => Message::OpenEpoch {
            session: r.u64()?,
            epoch: r.u64()?,
            m: r.u32()?,
            n: r.u64()?,
            seed: r.u64()?,
            op_kind: r.u8()?,
            op_param: r.u64()?,
        },
        TAG_SEAL_EPOCH => Message::SealEpoch { session: r.u64()?, epoch: r.u64()? },
        TAG_RECOVER_EPOCH => {
            Message::RecoverEpoch { session: r.u64()?, epoch: r.u64()?, k: r.u32()? }
        }
        TAG_ACK => Message::Ack { of: r.u8()?, info: r.u64()? },
        TAG_REJECT => Message::Reject { code: r.u16()?, retry_after_ms: r.u32()? },
        TAG_REPORT => {
            let epoch = r.u64()?;
            let mode = r.f64()?;
            let len = r.u32()? as usize;
            let mut outliers = Vec::with_capacity(capped(len, r.remaining(), 12));
            for _ in 0..len {
                let k = r.u32()?;
                let v = r.f64()?;
                outliers.push((k, v));
            }
            Message::Report { epoch, mode, outliers }
        }
        TAG_EPOCH_STATUS => Message::EpochStatus { session: r.u64()?, epoch: r.u64()? },
        TAG_STATUS => Message::Status { epoch: r.u64()?, phase: r.u8()?, nodes: r.u64()? },
        TAG_INTROSPECT => Message::Introspect,
        TAG_METRICS_REPLY => {
            let mut snapshot =
                MetricsSnapshot { version: r.u32()?, seq: r.u64()?, ..MetricsSnapshot::default() };
            for _ in 0..r.u32()? {
                let name = r.str16()?;
                snapshot.counters.insert(name, r.u64()?);
            }
            for _ in 0..r.u32()? {
                let name = r.str16()?;
                snapshot.gauges.insert(name, r.f64()?);
            }
            let buckets = Histogram::default().buckets.len();
            for _ in 0..r.u32()? {
                let name = r.str16()?;
                let mut h = Histogram {
                    count: r.u64()?,
                    sum: r.u64()?,
                    min: r.u64()?,
                    max: r.u64()?,
                    ..Histogram::default()
                };
                for _ in 0..r.u8()? {
                    let idx = usize::from(r.u8()?);
                    if idx >= buckets {
                        return Err(WireError::BadField {
                            field: "histogram bucket index",
                            value: idx as u64,
                        });
                    }
                    h.buckets[idx] = r.u64()?;
                }
                snapshot.histograms.insert(name, h);
            }
            Message::MetricsReply { snapshot }
        }
        TAG_RELAY_MANIFEST => Message::RelayManifest {
            session: r.u64()?,
            epoch: r.u64()?,
            region: r.u32()?,
            leaf_lo: r.u64()?,
            leaf_hi: r.u64()?,
            fan_in: r.u64()?,
        },
        other => return Err(WireError::UnknownTag(other)),
    };
    if !r.finished() {
        return Err(WireError::Truncated); // trailing garbage = framing bug
    }
    Ok(msg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{KV_PAIR_BITS, VALUE_BITS};
    use crate::quantize;
    use cso_linalg::Vector;

    fn sketch_msg(encoding: SketchEncoding) -> Message {
        let y = Vector::from_vec(vec![1.0, -2.5, 3e7, 0.0]);
        Message::Sketch { node: 3, seed: 99, payload: quantize::encode(&y, encoding) }
    }

    /// Recomputes the trailer after a test deliberately edits the body, so
    /// the edit reaches the parser instead of tripping the checksum.
    fn reseal(buf: &mut Vec<u8>) {
        let body_len = buf.len() - CHECKSUM_BYTES;
        let sum = crc32(&buf[..body_len]);
        buf.truncate(body_len);
        buf.extend_from_slice(&sum.to_le_bytes());
    }

    #[test]
    fn crc32_known_vector() {
        // The standard IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn sketch_round_trip_all_encodings() {
        for enc in [SketchEncoding::F64, SketchEncoding::F32, SketchEncoding::Fixed16] {
            let msg = sketch_msg(enc);
            let back = decode(&encode(&msg)).unwrap();
            assert_eq!(back, msg, "{enc:?}");
        }
    }

    #[test]
    fn kv_batch_round_trip() {
        let msg =
            Message::KvBatch { node: 7, pairs: vec![(0, 1.5), (4_000_000, -2.25), (42, f64::MAX)] };
        assert_eq!(decode(&encode(&msg)).unwrap(), msg);
    }

    #[test]
    fn mode_broadcast_round_trip() {
        let msg = Message::ModeBroadcast { mode: -1800.75 };
        assert_eq!(decode(&encode(&msg)).unwrap(), msg);
    }

    #[test]
    fn control_plane_round_trips() {
        let msgs = [
            Message::OpenEpoch {
                session: 7,
                epoch: 3,
                m: 128,
                n: 1 << 40,
                seed: u64::MAX,
                op_kind: 2,
                op_param: 12,
            },
            Message::SealEpoch { session: 7, epoch: 3 },
            Message::RecoverEpoch { session: 7, epoch: 3, k: 8 },
            Message::Ack { of: 4, info: 12 },
            Message::Reject { code: 2, retry_after_ms: 40 },
            Message::Report { epoch: 3, mode: 5000.5, outliers: vec![(9, 1.25), (0, -2e9)] },
            Message::EpochStatus { session: 7, epoch: 3 },
            Message::Status { epoch: 3, phase: 1, nodes: 12 },
            Message::Introspect,
            Message::MetricsReply { snapshot: sample_snapshot() },
            Message::RelayManifest {
                session: 7,
                epoch: 3,
                region: 2,
                leaf_lo: 8,
                leaf_hi: 12,
                fan_in: 4,
            },
        ];
        for msg in msgs {
            assert_eq!(decode(&encode(&msg)).unwrap(), msg);
        }
    }

    /// A snapshot exercising every section of the metrics codec, built the
    /// way real ones are — through a registry.
    fn sample_snapshot() -> cso_obs::MetricsSnapshot {
        let reg = cso_obs::MetricsRegistry::new();
        reg.counter_add("serve.sketches_accepted", 1234);
        reg.counter_add("serve.frames_handled", 9);
        reg.gauge_set("serve.queue_depth", 3.5);
        for v in [0u64, 1, 900, u64::MAX / 2] {
            reg.histogram_record("serve.ingest_ns", v);
        }
        reg.snapshot()
    }

    #[test]
    fn metrics_reply_round_trips_empty_and_full() {
        for snapshot in [cso_obs::MetricsSnapshot::default(), sample_snapshot()] {
            let msg = Message::MetricsReply { snapshot };
            assert_eq!(decode(&encode(&msg)).unwrap(), msg);
        }
    }

    #[test]
    fn metrics_reply_bad_bucket_index_is_typed() {
        // One histogram, one sparse bucket entry with index 70 (≥ 65).
        let mut buf = encode(&Message::MetricsReply { snapshot: sample_snapshot() });
        let body_len = buf.len() - CHECKSUM_BYTES;
        // Find the first sparse bucket entry: it follows the histogram
        // header. Easier: rebuild by hand via the public encoding shape.
        let mut w = Vec::new();
        w.extend_from_slice(&[TAG_METRICS_REPLY, WIRE_VERSION]);
        w.extend_from_slice(&1u32.to_le_bytes()); // snapshot version
        w.extend_from_slice(&1u64.to_le_bytes()); // seq
        w.extend_from_slice(&0u32.to_le_bytes()); // counters
        w.extend_from_slice(&0u32.to_le_bytes()); // gauges
        w.extend_from_slice(&1u32.to_le_bytes()); // histograms
        w.extend_from_slice(&1u16.to_le_bytes()); // name len
        w.push(b'h');
        for v in [1u64, 1, 1, 1] {
            w.extend_from_slice(&v.to_le_bytes()); // count/sum/min/max
        }
        w.push(1); // one sparse bucket
        w.push(70); // out-of-domain index
        w.extend_from_slice(&1u64.to_le_bytes());
        buf.truncate(body_len);
        buf.clear();
        buf.extend_from_slice(&w);
        buf.extend_from_slice(&crc32(&w).to_le_bytes());
        assert_eq!(
            decode(&buf),
            Err(WireError::BadField { field: "histogram bucket index", value: 70 })
        );
    }

    #[test]
    fn tags_match_the_encoded_discriminant() {
        let msgs = [
            sketch_msg(SketchEncoding::F64),
            Message::KvBatch { node: 0, pairs: vec![] },
            Message::ModeBroadcast { mode: 0.0 },
            Message::OpenEpoch {
                session: 0,
                epoch: 0,
                m: 0,
                n: 0,
                seed: 0,
                op_kind: 0,
                op_param: 0,
            },
            Message::SealEpoch { session: 0, epoch: 0 },
            Message::RecoverEpoch { session: 0, epoch: 0, k: 0 },
            Message::Ack { of: 0, info: 0 },
            Message::Reject { code: 0, retry_after_ms: 0 },
            Message::Report { epoch: 0, mode: 0.0, outliers: vec![] },
            Message::EpochStatus { session: 0, epoch: 0 },
            Message::Status { epoch: 0, phase: 0, nodes: 0 },
            Message::Introspect,
            Message::MetricsReply { snapshot: cso_obs::MetricsSnapshot::default() },
            Message::RelayManifest {
                session: 0,
                epoch: 0,
                region: 0,
                leaf_lo: 0,
                leaf_hi: 0,
                fan_in: 0,
            },
        ];
        for (i, msg) in msgs.iter().enumerate() {
            assert_eq!(msg.tag(), i as u8 + 1);
            assert_eq!(encode(msg)[0], msg.tag());
        }
    }

    #[test]
    fn sketch_payload_matches_cost_accounting() {
        // The abstract meter charges 64 bits per sketch value; the real
        // f64 payload is exactly that plus fixed header + CRC trailer.
        let m = 4;
        let bytes = encode(&sketch_msg(SketchEncoding::F64)).len() as u64;
        let header = 1 + 1 + 4 + 8 + 1 + 4; // tag, ver, node, seed, enc, len
        assert_eq!(bytes, header + m * VALUE_BITS / 8 + CHECKSUM_BYTES as u64);
    }

    #[test]
    fn kv_payload_matches_cost_accounting() {
        // 96 bits per pair (32-bit key id + 64-bit value), plus framing.
        let pairs = 3u64;
        let msg = Message::KvBatch { node: 1, pairs: vec![(1, 1.0), (2, 2.0), (3, 3.0)] };
        let bytes = encode(&msg).len() as u64;
        let header = 1 + 1 + 4 + 4;
        assert_eq!(bytes, header + pairs * KV_PAIR_BITS / 8 + CHECKSUM_BYTES as u64);
    }

    #[test]
    fn truncated_buffers_rejected() {
        // Too short to even hold the trailer → Truncated; cut mid-frame the
        // trailer no longer matches the remaining body → ChecksumMismatch.
        // Either way no bytes are ever interpreted as a message.
        let full = encode(&sketch_msg(SketchEncoding::F64));
        for cut in [0usize, 1, 5] {
            assert_eq!(decode(&full[..cut]), Err(WireError::Truncated), "cut = {cut}");
        }
        for cut in [7usize, full.len() - 1] {
            assert!(
                matches!(decode(&full[..cut]), Err(WireError::ChecksumMismatch { .. })),
                "cut = {cut}"
            );
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut buf = encode(&Message::ModeBroadcast { mode: 1.0 });
        buf.push(0);
        reseal(&mut buf);
        assert_eq!(decode(&buf), Err(WireError::Truncated));
    }

    #[test]
    fn every_flipped_bit_is_caught() {
        // CRC-32 detects all single-bit errors: flip each bit of a frame in
        // turn and the decoder must reject every variant (checksum first,
        // or Truncated/parse errors never yielding a wrong message).
        let good = encode(&sketch_msg(SketchEncoding::Fixed16));
        let original = decode(&good).unwrap();
        for byte in 0..good.len() {
            for bit in 0..8 {
                let mut bad = good.clone();
                bad[byte] ^= 1 << bit;
                assert_ne!(
                    decode(&bad).ok(),
                    Some(original.clone()),
                    "flip at byte {byte} bit {bit} silently accepted"
                );
                assert!(
                    matches!(decode(&bad), Err(WireError::ChecksumMismatch { .. })),
                    "flip at byte {byte} bit {bit} not caught by the checksum"
                );
            }
        }
    }

    #[test]
    fn unknown_tag_round_trip() {
        let mut buf = encode(&Message::ModeBroadcast { mode: 1.0 });
        buf[0] = 99;
        reseal(&mut buf);
        assert_eq!(decode(&buf), Err(WireError::UnknownTag(99)));
    }

    #[test]
    fn version_mismatch_round_trip() {
        let mut buf = encode(&Message::ModeBroadcast { mode: 1.0 });
        buf[1] = 9;
        reseal(&mut buf);
        assert_eq!(decode(&buf), Err(WireError::VersionMismatch { got: 9, want: WIRE_VERSION }));
    }

    #[test]
    fn bad_encoding_rejected() {
        let mut buf = encode(&sketch_msg(SketchEncoding::F64));
        buf[14] = 7; // encoding byte (after tag, ver, node, seed)
        reseal(&mut buf);
        assert_eq!(decode(&buf), Err(WireError::BadEncoding(7)));
    }

    #[test]
    fn corrupt_length_field_cannot_drive_allocation() {
        // Declare u32::MAX elements: the checksum rejects the frame, and
        // even a resealed frame parses within the buffer's actual bytes.
        let mut buf = encode(&sketch_msg(SketchEncoding::F64));
        buf[15..19].copy_from_slice(&u32::MAX.to_le_bytes()); // len field
        assert!(matches!(decode(&buf), Err(WireError::ChecksumMismatch { .. })));
        reseal(&mut buf);
        assert_eq!(decode(&buf), Err(WireError::Truncated));
    }

    #[test]
    fn error_display() {
        assert!(WireError::Truncated.to_string().contains("truncated"));
        assert!(WireError::UnknownTag(5).to_string().contains('5'));
        assert!(WireError::VersionMismatch { got: 9, want: 2 }.to_string().contains('9'));
        assert!(WireError::ChecksumMismatch { stored: 1, computed: 2 }
            .to_string()
            .contains("checksum"));
    }
}
