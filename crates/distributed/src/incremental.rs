//! Incremental sketch maintenance.
//!
//! The introduction lists two operational requirements the sketch must
//! satisfy beyond one-shot queries: (2) terabytes of new click data arrive
//! every 10 minutes, so incremental updates are mandatory; (3) data centers
//! join and leave the aggregation. Because the measurement is linear, both
//! reduce to adding or subtracting `M`-length vectors — no recomputation
//! over historical data is ever needed.

use cso_core::{bomp_with_matrix, BompConfig, BompResult, MeasurementSpec};
use cso_linalg::{ColMatrix, LinalgError, Vector};
use std::collections::BTreeMap;

/// An aggregator that maintains the global sketch under streaming updates
/// and node membership changes.
///
/// The global measurement is kept **canonical**: after any membership
/// change (join or leave) `y` is recomputed as the dyadic fold of the
/// current per-node sketches over the node-id space ([`crate::fold`]). A
/// running float sum would drift under
/// churn — `(y + s) − s + s` is not `y + s` bit-for-bit — so a node that
/// leaves and re-joins across an epoch boundary would otherwise perturb
/// every later recovery. Canonical resummation makes membership history
/// irrelevant: the same member set with the same sketches always yields
/// the same measurement bits, which is also what lets a TCP server ingest
/// sketches in arbitrary arrival order and still recover bit-identically
/// to the sequential in-process path (`cso-serve`). Membership changes
/// cost `O(L·M)`; streaming [`SketchAggregator::update`]s stay `O(M)`.
#[derive(Debug, Clone)]
pub struct SketchAggregator {
    spec: MeasurementSpec,
    /// Current global measurement: the dyadic fold of `node_sketches`
    /// plus any streaming deltas applied since the last membership change.
    y: Vector,
    /// Last full sketch received per node id (needed to retire a node),
    /// keyed in ascending order so resummation is deterministic.
    node_sketches: BTreeMap<usize, Vector>,
    /// Lazily materialized `Φ0` for recovery.
    phi0: Option<ColMatrix>,
}

impl SketchAggregator {
    /// Creates an empty aggregator for the given measurement spec.
    pub fn new(spec: MeasurementSpec) -> Self {
        SketchAggregator {
            spec,
            y: Vector::zeros(spec.m),
            node_sketches: BTreeMap::new(),
            phi0: None,
        }
    }

    /// The shared measurement spec.
    pub fn spec(&self) -> &MeasurementSpec {
        &self.spec
    }

    /// Number of participating nodes.
    pub fn node_count(&self) -> usize {
        self.node_sketches.len()
    }

    /// True when `node` currently contributes a sketch.
    pub fn contains(&self, node: usize) -> bool {
        self.node_sketches.contains_key(&node)
    }

    /// The contributing node ids, ascending.
    pub fn node_ids(&self) -> Vec<usize> {
        self.node_sketches.keys().copied().collect()
    }

    /// The last full sketch `node` contributed, if it is a member — what a
    /// durability layer persists to reconstruct an in-flight epoch.
    pub fn node_sketch(&self, node: usize) -> Option<&Vector> {
        self.node_sketches.get(&node)
    }

    /// The current global measurement.
    pub fn global_measurement(&self) -> &Vector {
        &self.y
    }

    /// Registers a node's initial sketch (a data center joins). Errors on a
    /// wrong sketch length or an id already registered.
    pub fn join(&mut self, node: usize, sketch: Vector) -> Result<(), LinalgError> {
        self.check_len(&sketch)?;
        if self.node_sketches.contains_key(&node) {
            return Err(LinalgError::InvalidParameter {
                name: "node",
                message: "node id already registered".into(),
            });
        }
        self.node_sketches.insert(node, sketch);
        self.resum();
        Ok(())
    }

    /// Retires a node (a data center leaves). Errors on an unknown id.
    pub fn leave(&mut self, node: usize) -> Result<(), LinalgError> {
        self.node_sketches.remove(&node).ok_or(LinalgError::InvalidParameter {
            name: "node",
            message: "unknown node id".into(),
        })?;
        self.resum();
        Ok(())
    }

    /// Recomputes the canonical measurement: the [dyadic fold] of the
    /// current sketches over the node-id space. Called on every membership
    /// change so a leave/re-join cycle is loss-free — subtracting and
    /// re-adding a float vector is *not* the identity, refolding the same
    /// set is. The dyadic shape (rather than a sequential ascending sum)
    /// is what lets a relay tier pre-sum an aligned block of node ids and
    /// still reproduce this measurement bit-for-bit at the root.
    ///
    /// [dyadic fold]: crate::fold::dyadic_fold
    fn resum(&mut self) {
        let members: Vec<(usize, &Vector)> =
            self.node_sketches.iter().map(|(id, s)| (*id, s)).collect();
        self.y = crate::fold::dyadic_fold(self.spec.m, &members);
    }

    /// Applies a batch of new records on `node`, given as sparse
    /// `(key index, score delta)` pairs: the node measures only the delta
    /// and ships an `M`-length update — cost `O(M)`, independent of history.
    pub fn update(&mut self, node: usize, delta: &[(usize, f64)]) -> Result<(), LinalgError> {
        let dy = self.spec.measure_sparse(delta)?;
        let sketch = self.node_sketches.get_mut(&node).ok_or(LinalgError::InvalidParameter {
            name: "node",
            message: "unknown node id".into(),
        })?;
        sketch.add_assign(&dy)?;
        self.y.add_assign(&dy)?;
        Ok(())
    }

    /// Recovers mode and outliers from the current global sketch.
    pub fn recover(&mut self, config: &BompConfig) -> Result<BompResult, LinalgError> {
        if self.phi0.is_none() {
            self.phi0 = Some(self.spec.materialize());
        }
        bomp_with_matrix(self.phi0.as_ref().expect("just set"), &self.y, config)
    }

    fn check_len(&self, sketch: &Vector) -> Result<(), LinalgError> {
        if sketch.len() != self.spec.m {
            return Err(LinalgError::DimensionMismatch {
                op: "sketch",
                expected: (self.spec.m, 1),
                actual: (sketch.len(), 1),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> MeasurementSpec {
        MeasurementSpec::new(80, 200, 77).unwrap()
    }

    fn dense_with(mode: f64, outliers: &[(usize, f64)]) -> Vec<f64> {
        let mut x = vec![mode; 200];
        for &(i, v) in outliers {
            x[i] = v;
        }
        x
    }

    #[test]
    fn join_update_recover_round_trip() {
        let spec = spec();
        let mut agg = SketchAggregator::new(spec);
        // Two nodes, each holding half the mode mass.
        let a = dense_with(900.0, &[(10, 5000.0)]);
        let b = dense_with(900.0, &[(10, 4500.0)]);
        agg.join(0, spec.measure_dense(&a).unwrap()).unwrap();
        agg.join(1, spec.measure_dense(&b).unwrap()).unwrap();
        assert_eq!(agg.node_count(), 2);
        let r = agg.recover(&BompConfig::default()).unwrap();
        assert!((r.mode - 1800.0).abs() < 1e-6);
        assert_eq!(r.top_k(1)[0].index, 10);
        assert!((r.top_k(1)[0].value - 9500.0).abs() < 1e-4);
    }

    #[test]
    fn streaming_updates_shift_the_result() {
        let spec = spec();
        let mut agg = SketchAggregator::new(spec);
        let a = dense_with(100.0, &[(5, 4000.0)]);
        agg.join(0, spec.measure_dense(&a).unwrap()).unwrap();
        // New click data arrives: key 150 suddenly spikes on node 0.
        agg.update(0, &[(150, 7000.0)]).unwrap();
        let r = agg.recover(&BompConfig::default()).unwrap();
        let top: Vec<usize> = r.top_k(2).iter().map(|o| o.index).collect();
        assert!(top.contains(&150), "new outlier must appear, got {top:?}");
        assert!((r.mode - 100.0).abs() < 1e-6);
    }

    #[test]
    fn leave_subtracts_contribution_exactly() {
        let spec = spec();
        let mut agg = SketchAggregator::new(spec);
        let a = dense_with(500.0, &[(3, 9000.0)]);
        let b = dense_with(500.0, &[(120, -4000.0)]);
        let ya = spec.measure_dense(&a).unwrap();
        agg.join(0, ya.clone()).unwrap();
        agg.join(1, spec.measure_dense(&b).unwrap()).unwrap();
        agg.leave(1).unwrap();
        assert_eq!(agg.node_count(), 1);
        assert!(agg.global_measurement().approx_eq(&ya, 1e-9));
        let r = agg.recover(&BompConfig::default()).unwrap();
        assert_eq!(r.top_k(1)[0].index, 3);
        assert!((r.mode - 500.0).abs() < 1e-6);
    }

    /// Node churn is a server's steady state: a node that leaves and
    /// re-joins with the same sketch must leave the global measurement
    /// bit-for-bit unchanged, no matter how many cycles happen or in what
    /// order the membership set was originally assembled.
    #[test]
    fn leave_then_rejoin_is_loss_free() {
        let spec = spec();
        let mut agg = SketchAggregator::new(spec);
        let sketches: Vec<Vector> = (0..4)
            .map(|i| {
                spec.measure_dense(&dense_with(100.0 + i as f64, &[(i * 31, 7e3 * (i + 1) as f64)]))
                    .unwrap()
            })
            .collect();
        for (i, s) in sketches.iter().enumerate() {
            agg.join(i, s.clone()).unwrap();
        }
        let before: Vec<u64> = agg.global_measurement().iter().map(|v| v.to_bits()).collect();

        // An epoch boundary's worth of churn: each node leaves and comes
        // back, twice over, interleaved.
        for _ in 0..2 {
            for (i, s) in sketches.iter().enumerate() {
                agg.leave(i).unwrap();
                assert_eq!(agg.node_count(), 3);
                agg.join(i, s.clone()).unwrap();
            }
        }
        let after: Vec<u64> = agg.global_measurement().iter().map(|v| v.to_bits()).collect();
        assert_eq!(before, after, "churn drifted the global measurement");
    }

    /// The measurement is canonical in the member set: join order is
    /// irrelevant, so concurrent ingest (arbitrary arrival order over TCP)
    /// agrees bit-for-bit with the sequential reference.
    #[test]
    fn join_order_does_not_change_the_bits() {
        let spec = spec();
        let sketches: Vec<Vector> = (0..5)
            .map(|i| spec.measure_dense(&dense_with(i as f64, &[(i * 17, 900.0)])).unwrap())
            .collect();
        let reference: Vec<u64> = {
            let mut agg = SketchAggregator::new(spec);
            for (i, s) in sketches.iter().enumerate() {
                agg.join(i, s.clone()).unwrap();
            }
            agg.global_measurement().iter().map(|v| v.to_bits()).collect()
        };
        for order in [[4usize, 2, 0, 3, 1], [1, 3, 4, 0, 2]] {
            let mut agg = SketchAggregator::new(spec);
            for &i in &order {
                agg.join(i, sketches[i].clone()).unwrap();
            }
            let got: Vec<u64> = agg.global_measurement().iter().map(|v| v.to_bits()).collect();
            assert_eq!(got, reference, "order {order:?}");
        }
    }

    #[test]
    fn membership_introspection() {
        let spec = spec();
        let mut agg = SketchAggregator::new(spec);
        agg.join(3, Vector::zeros(80)).unwrap();
        agg.join(1, Vector::zeros(80)).unwrap();
        assert!(agg.contains(3));
        assert!(!agg.contains(0));
        assert_eq!(agg.node_ids(), vec![1, 3]);
    }

    #[test]
    fn join_twice_and_unknown_node_rejected() {
        let spec = spec();
        let mut agg = SketchAggregator::new(spec);
        agg.join(0, Vector::zeros(80)).unwrap();
        assert!(agg.join(0, Vector::zeros(80)).is_err());
        assert!(agg.leave(9).is_err());
        assert!(agg.update(9, &[(0, 1.0)]).is_err());
        assert!(agg.join(1, Vector::zeros(81)).is_err());
    }

    #[test]
    fn update_matches_resketching_from_scratch() {
        let spec = spec();
        let mut agg = SketchAggregator::new(spec);
        let base = dense_with(0.0, &[(1, 10.0)]);
        agg.join(0, spec.measure_dense(&base).unwrap()).unwrap();
        agg.update(0, &[(2, 20.0), (1, 5.0)]).unwrap();
        // Reference: sketch of the fully updated slice.
        let mut updated = base;
        updated[2] += 20.0;
        updated[1] += 5.0;
        let reference = spec.measure_dense(&updated).unwrap();
        assert!(agg.global_measurement().approx_eq(&reference, 1e-9));
    }
}
