//! Global key dictionary (the paper's *vectorization* step, Section 3.1).
//!
//! "Given a key space of size N, we can build a global key dictionary: the
//! values on each node are arranged by their key in a globally fixed order
//! forming a vector." Every party must agree on the key → index mapping so
//! that position `i` of every slice refers to the same group-by key.

use cso_linalg::LinalgError;
use std::collections::HashMap;
use std::hash::Hash;

/// A frozen, ordered key space shared by all nodes and the aggregator.
#[derive(Debug, Clone)]
pub struct KeyDictionary<K: Eq + Hash + Clone> {
    keys: Vec<K>,
    index: HashMap<K, usize>,
}

impl<K: Eq + Hash + Clone> KeyDictionary<K> {
    /// Builds a dictionary from an ordered list of distinct keys.
    ///
    /// Errors on an empty list or duplicates (every key must have exactly
    /// one position).
    pub fn new(keys: Vec<K>) -> Result<Self, LinalgError> {
        if keys.is_empty() {
            return Err(LinalgError::Empty { op: "key_dictionary" });
        }
        let mut index = HashMap::with_capacity(keys.len());
        for (i, k) in keys.iter().enumerate() {
            if index.insert(k.clone(), i).is_some() {
                return Err(LinalgError::InvalidParameter {
                    name: "keys",
                    message: "duplicate key in dictionary".into(),
                });
            }
        }
        Ok(KeyDictionary { keys, index })
    }

    /// Number of keys `N`.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Never true — construction rejects empty dictionaries — but provided
    /// for API completeness.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Index of `key`, if present.
    pub fn index_of(&self, key: &K) -> Option<usize> {
        self.index.get(key).copied()
    }

    /// Key at `index`, if in range.
    pub fn key_at(&self, index: usize) -> Option<&K> {
        self.keys.get(index)
    }

    /// Iterates keys in dictionary order.
    pub fn iter(&self) -> std::slice::Iter<'_, K> {
        self.keys.iter()
    }

    /// Vectorizes a multiset of `(key, value)` records into a dense slice:
    /// values of the same key accumulate (local partial aggregation),
    /// missing keys stay 0, unknown keys are an error — the global
    /// dictionary is authoritative.
    pub fn vectorize(&self, records: &[(K, f64)]) -> Result<Vec<f64>, LinalgError> {
        let mut out = vec![0.0; self.len()];
        for (k, v) in records {
            match self.index_of(k) {
                Some(i) => out[i] += v,
                None => {
                    return Err(LinalgError::InvalidParameter {
                        name: "records",
                        message: "record key not in the global dictionary".into(),
                    })
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dict() -> KeyDictionary<String> {
        KeyDictionary::new(vec!["a".into(), "b".into(), "c".into()]).unwrap()
    }

    #[test]
    fn lookup_round_trips() {
        let d = dict();
        assert_eq!(d.len(), 3);
        assert!(!d.is_empty());
        assert_eq!(d.index_of(&"b".to_string()), Some(1));
        assert_eq!(d.key_at(1), Some(&"b".to_string()));
        assert_eq!(d.index_of(&"z".to_string()), None);
        assert_eq!(d.key_at(3), None);
    }

    #[test]
    fn rejects_empty_and_duplicates() {
        assert!(KeyDictionary::<String>::new(vec![]).is_err());
        assert!(KeyDictionary::new(vec!["a".to_string(), "a".to_string()]).is_err());
    }

    #[test]
    fn vectorize_aggregates_by_key() {
        let d = dict();
        let x = d
            .vectorize(&[("a".to_string(), 2.0), ("c".to_string(), 5.0), ("a".to_string(), 3.0)])
            .unwrap();
        assert_eq!(x, vec![5.0, 0.0, 5.0]);
    }

    #[test]
    fn vectorize_rejects_unknown_keys() {
        let d = dict();
        assert!(d.vectorize(&[("nope".to_string(), 1.0)]).is_err());
    }

    #[test]
    fn works_with_composite_keys() {
        let d = KeyDictionary::new(vec![(0u8, 1u8), (0, 2), (1, 1)]).unwrap();
        assert_eq!(d.index_of(&(0, 2)), Some(1));
        let x = d.vectorize(&[((1, 1), 7.0)]).unwrap();
        assert_eq!(x, vec![0.0, 0.0, 7.0]);
    }

    #[test]
    fn iter_preserves_order() {
        let d = dict();
        let collected: Vec<&String> = d.iter().collect();
        assert_eq!(collected, vec!["a", "b", "c"]);
    }
}
