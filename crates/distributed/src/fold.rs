//! The canonical dyadic fold: the one summation order every layer of the
//! system uses to combine per-node sketches into a global measurement.
//!
//! # Why a fixed fold shape
//!
//! Sketch entries are generic floats (the measurement matrix is Gaussian),
//! so float addition is **not associative**: `(a + b) + c` and
//! `a + (b + c)` can differ in the last ulp. A flat reducer that sums
//! sketches sequentially therefore cannot be reproduced bit-for-bit by a
//! relay tier that pre-sums each region and forwards one partial — the
//! tree imposes different parenthesization. The fix is to make the
//! parenthesization part of the protocol: every fold site combines
//! sketches with the same *dyadic* (segment-tree) shape over the absolute
//! node-id space, so any aligned sub-block can be pre-summed anywhere in
//! the tree and the final bits never change.
//!
//! # Definition
//!
//! For members with ids drawn from `[0, U)` where `U` is a power of two,
//! `fold([lo, hi))` is:
//!
//! - the member's sketch verbatim, if `[lo, hi)` contains exactly one
//!   member (no zero vector is ever added in);
//! - `fold([lo, mid)) + fold([mid, hi))` with `mid = (lo + hi) / 2`,
//!   where an empty half contributes nothing (the non-empty half passes
//!   through verbatim rather than being added to zero).
//!
//! The universe `U` does not affect the result as long as every id fits:
//! growing `U` only wraps the occupied prefix in skipped empty halves.
//! Two consequences make the relay tier work:
//!
//! - **Composability**: a region owning the aligned id block
//!   `[g·f, (g+1)·f)` (`f` a power of two) computes exactly the flat
//!   fold's subtree value for that block, so the root folding region
//!   pre-sums over *region* ids reproduces the flat fold over *leaf* ids
//!   bit-for-bit.
//! - **Degradation**: losing a whole region is the same multiset change
//!   as losing its leaf block, so a degraded tree fold and a degraded
//!   flat fold over the same survivors agree bit-for-bit too.

use cso_linalg::Vector;

/// Sums `sketches` (id-keyed, any order, ids unique) in the canonical
/// dyadic order over the id space. Returns a zero vector of length `m`
/// when no sketches are given. All sketches must have length `m`.
///
/// This is the *only* summation order that global measurements are
/// allowed to be built with — `SketchAggregator`, the wire protocols,
/// the degraded collector and the serve/relay tier all call it, which is
/// what keeps every execution path bit-identical to every other.
pub fn dyadic_fold(m: usize, sketches: &[(usize, &Vector)]) -> Vector {
    let mut members: Vec<(usize, &Vector)> = sketches.to_vec();
    members.sort_by_key(|(id, _)| *id);
    members.windows(2).for_each(|w| debug_assert_ne!(w[0].0, w[1].0, "duplicate node id"));
    match members.len() {
        0 => Vector::zeros(m),
        _ => {
            let hi = members.last().expect("non-empty").0 + 1;
            fold(&members, 0, hi.next_power_of_two()).expect("members within [lo, hi)")
        }
    }
}

/// Folds the (sorted) members whose ids lie in `[lo, hi)`. `None` for an
/// empty range — the caller skips it rather than adding zeros.
fn fold(members: &[(usize, &Vector)], lo: usize, hi: usize) -> Option<Vector> {
    match members {
        [] => None,
        [(_, sketch)] => Some((*sketch).clone()),
        _ => {
            let mid = lo + (hi - lo) / 2;
            let split = members.partition_point(|(id, _)| *id < mid);
            let left = fold(&members[..split], lo, mid);
            let right = fold(&members[split..], mid, hi);
            match (left, right) {
                (Some(mut l), Some(r)) => {
                    l.add_assign(&r).expect("sketch lengths verified by caller");
                    Some(l)
                }
                (l, r) => l.or(r),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sk(seed: u64, m: usize) -> Vector {
        // Deterministic, irregular mantissas so associativity violations
        // actually show up.
        Vector::from_vec(
            (0..m).map(|i| ((seed * 2654435761 + i as u64 * 40503) as f64).sin() * 1e3).collect(),
        )
    }

    fn bits(v: &Vector) -> Vec<u64> {
        v.iter().map(|x| x.to_bits()).collect()
    }

    #[test]
    fn empty_fold_is_zero() {
        assert_eq!(bits(&dyadic_fold(4, &[])), bits(&Vector::zeros(4)));
    }

    #[test]
    fn singleton_passes_through_verbatim() {
        let s = sk(9, 8);
        assert_eq!(bits(&dyadic_fold(8, &[(5, &s)])), bits(&s));
    }

    #[test]
    fn order_of_presentation_is_irrelevant() {
        let m = 16;
        let sketches: Vec<Vector> = (0..7).map(|i| sk(i, m)).collect();
        let fwd: Vec<(usize, &Vector)> = sketches.iter().enumerate().collect();
        let mut rev = fwd.clone();
        rev.reverse();
        assert_eq!(bits(&dyadic_fold(m, &fwd)), bits(&dyadic_fold(m, &rev)));
    }

    /// The relay-tier contract: pre-summing every aligned `fan_in` block
    /// and dyadically folding the block sums over *region* ids must equal
    /// the flat dyadic fold over *leaf* ids, bit for bit.
    #[test]
    fn aligned_block_presums_compose_exactly() {
        let m = 32;
        for leaves in [8usize, 12, 16] {
            let sketches: Vec<Vector> = (0..leaves).map(|i| sk(i as u64 + 100, m)).collect();
            let refs: Vec<(usize, &Vector)> = sketches.iter().enumerate().collect();
            let flat = dyadic_fold(m, &refs);
            for fan_in in [2usize, 4, 8] {
                let regions: Vec<Vector> = (0..leaves.div_ceil(fan_in))
                    .map(|g| {
                        let block: Vec<(usize, &Vector)> = refs
                            .iter()
                            .filter(|(id, _)| id / fan_in == g)
                            .map(|&(id, s)| (id, s))
                            .collect();
                        dyadic_fold(m, &block)
                    })
                    .collect();
                let region_refs: Vec<(usize, &Vector)> = regions.iter().enumerate().collect();
                assert_eq!(
                    bits(&dyadic_fold(m, &region_refs)),
                    bits(&flat),
                    "leaves={leaves} fan_in={fan_in}"
                );
            }
        }
    }

    /// Losing a whole region and losing its leaf block are the same
    /// multiset change, so both degraded folds agree bit for bit.
    #[test]
    fn region_loss_equals_leaf_block_loss() {
        let m = 16;
        let (leaves, fan_in, lost_region) = (12usize, 4usize, 1usize);
        let sketches: Vec<Vector> = (0..leaves).map(|i| sk(i as u64 + 7, m)).collect();
        let survivors: Vec<(usize, &Vector)> =
            sketches.iter().enumerate().filter(|(id, _)| id / fan_in != lost_region).collect();
        let flat_degraded = dyadic_fold(m, &survivors);
        // Regions 0 and 2 each pre-sum their own aligned block; the root
        // folds the two pre-sums over the surviving *region* ids.
        let presum = |g: usize| {
            let block: Vec<(usize, &Vector)> =
                survivors.iter().filter(|(id, _)| id / fan_in == g).copied().collect();
            dyadic_fold(m, &block)
        };
        let (r0, r2) = (presum(0), presum(2));
        let tree_degraded = dyadic_fold(m, &[(0, &r0), (2, &r2)]);
        assert_eq!(bits(&tree_degraded), bits(&flat_degraded));
    }

    /// The naive sequential left fold genuinely differs — this pins that
    /// the dyadic shape is load-bearing, not a stylistic choice.
    #[test]
    fn sequential_fold_would_not_compose() {
        let m = 64;
        let sketches: Vec<Vector> = (0..8).map(|i| sk(i + 31, m)).collect();
        let mut seq = Vector::zeros(m);
        for s in &sketches {
            seq.add_assign(s).unwrap();
        }
        let refs: Vec<(usize, &Vector)> = sketches.iter().enumerate().collect();
        let dyadic = dyadic_fold(m, &refs);
        assert_ne!(bits(&seq), bits(&dyadic), "expected at least one ulp of divergence");
    }
}
