//! A simulated shared-nothing cluster: `L` nodes each holding an additive
//! slice of the global data vector.

use cso_linalg::LinalgError;

/// The distributed data a protocol runs against: `L` slices of a common
/// `N`-dimensional vector with `x = Σ_l x_l`.
#[derive(Debug, Clone)]
pub struct Cluster {
    slices: Vec<Vec<f64>>,
    n: usize,
}

impl Cluster {
    /// Builds a cluster from per-node dense slices. All slices must share
    /// one length, contain only finite values (a NaN would silently poison
    /// every downstream aggregate), and at least one node is required.
    ///
    /// A cluster whose slices are *all* empty is legal (a zero-key key
    /// space, the degenerate-but-consistent case); an empty first slice
    /// next to non-empty ones is a ragged cluster and is rejected with an
    /// error naming the offending node.
    pub fn new(slices: Vec<Vec<f64>>) -> Result<Self, LinalgError> {
        let n = match slices.first() {
            Some(s) => s.len(),
            None => return Err(LinalgError::Empty { op: "cluster" }),
        };
        for (l, s) in slices.iter().enumerate() {
            if s.len() != n {
                return Err(LinalgError::InvalidParameter {
                    name: "slices",
                    message: format!(
                        "ragged cluster: node {l} holds {} values but node 0 holds {n}",
                        s.len()
                    )
                    .into(),
                });
            }
            if let Some(i) = s.iter().position(|v| !v.is_finite()) {
                return Err(LinalgError::InvalidParameter {
                    name: "slices",
                    message: format!("node {l} holds a non-finite value at key {i}").into(),
                });
            }
        }
        Ok(Cluster { slices, n })
    }

    /// Number of nodes `L`.
    pub fn l(&self) -> usize {
        self.slices.len()
    }

    /// Key-space size `N`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Borrows node `l`'s slice.
    pub fn slice(&self, l: usize) -> &[f64] {
        &self.slices[l]
    }

    /// All slices.
    pub fn slices(&self) -> &[Vec<f64>] {
        &self.slices
    }

    /// The ground-truth aggregate `x = Σ_l x_l` (what an omniscient
    /// aggregator would compute — protocols are scored against this).
    pub fn aggregate(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.n];
        for s in &self.slices {
            for (o, v) in out.iter_mut().zip(s) {
                *o += *v;
            }
        }
        out
    }

    /// Non-zero counts per node — the `nᵢ` of the keyid-value ALL cost.
    pub fn nonzeros_per_node(&self) -> Vec<usize> {
        self.slices.iter().map(|s| s.iter().filter(|&&v| v != 0.0).count()).collect()
    }

    /// Adds a node (the paper's "a new data center joins the network").
    pub fn add_node(&mut self, slice: Vec<f64>) -> Result<usize, LinalgError> {
        if slice.len() != self.n {
            return Err(LinalgError::DimensionMismatch {
                op: "add_node",
                expected: (self.n, 1),
                actual: (slice.len(), 1),
            });
        }
        if slice.iter().any(|v| !v.is_finite()) {
            return Err(LinalgError::InvalidParameter {
                name: "slice",
                message: "slice values must be finite".into(),
            });
        }
        self.slices.push(slice);
        Ok(self.slices.len() - 1)
    }

    /// Removes a node, returning its slice. Errors when it would leave the
    /// cluster empty or the index is out of range.
    pub fn remove_node(&mut self, l: usize) -> Result<Vec<f64>, LinalgError> {
        if l >= self.slices.len() {
            return Err(LinalgError::InvalidParameter {
                name: "l",
                message: "node index out of range".into(),
            });
        }
        if self.slices.len() == 1 {
            return Err(LinalgError::InvalidParameter {
                name: "l",
                message: "cannot remove the last node".into(),
            });
        }
        Ok(self.slices.remove(l))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster() -> Cluster {
        Cluster::new(vec![vec![1.0, 2.0, 3.0], vec![4.0, 0.0, -3.0]]).unwrap()
    }

    #[test]
    fn dimensions_and_aggregate() {
        let c = cluster();
        assert_eq!(c.l(), 2);
        assert_eq!(c.n(), 3);
        assert_eq!(c.aggregate(), vec![5.0, 2.0, 0.0]);
        assert_eq!(c.slice(1), &[4.0, 0.0, -3.0]);
    }

    #[test]
    fn rejects_empty_and_ragged() {
        assert!(Cluster::new(vec![]).is_err());
        assert!(Cluster::new(vec![vec![1.0], vec![1.0, 2.0]]).is_err());
        // An empty first slice is only legal when every slice is empty.
        assert!(Cluster::new(vec![vec![], vec![1.0]]).is_err());
    }

    #[test]
    fn all_empty_slices_are_a_legal_degenerate_cluster() {
        let c = Cluster::new(vec![vec![], vec![], vec![]]).unwrap();
        assert_eq!(c.l(), 3);
        assert_eq!(c.n(), 0);
        assert_eq!(c.aggregate(), Vec::<f64>::new());
    }

    #[test]
    fn ragged_error_names_the_offending_node() {
        let err = Cluster::new(vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0]]).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("node 2"), "{msg}");
        assert!(msg.contains("ragged"), "{msg}");

        let err = Cluster::new(vec![vec![], vec![1.0]]).unwrap_err();
        assert!(err.to_string().contains("node 1"), "{err}");
    }

    #[test]
    fn rejects_non_finite_values() {
        assert!(Cluster::new(vec![vec![1.0, f64::NAN]]).is_err());
        assert!(Cluster::new(vec![vec![f64::INFINITY, 0.0]]).is_err());
        let mut c = cluster();
        assert!(c.add_node(vec![1.0, f64::NAN, 0.0]).is_err());
        assert_eq!(c.l(), 2, "rejected node must not be added");
    }

    #[test]
    fn nonzeros_counted_per_node() {
        let c = cluster();
        assert_eq!(c.nonzeros_per_node(), vec![3, 2]);
    }

    #[test]
    fn add_and_remove_nodes() {
        let mut c = cluster();
        let id = c.add_node(vec![1.0, 1.0, 1.0]).unwrap();
        assert_eq!(id, 2);
        assert_eq!(c.aggregate(), vec![6.0, 3.0, 1.0]);
        let removed = c.remove_node(0).unwrap();
        assert_eq!(removed, vec![1.0, 2.0, 3.0]);
        assert_eq!(c.aggregate(), vec![5.0, 1.0, -2.0]);
        assert!(c.add_node(vec![1.0]).is_err());
        assert!(c.remove_node(9).is_err());
    }

    #[test]
    fn cannot_remove_last_node() {
        let mut c = Cluster::new(vec![vec![1.0]]).unwrap();
        assert!(c.remove_node(0).is_err());
    }
}
