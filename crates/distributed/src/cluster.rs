//! A simulated shared-nothing cluster: `L` nodes each holding an additive
//! slice of the global data vector.

use cso_linalg::LinalgError;

/// The distributed data a protocol runs against: `L` slices of a common
/// `N`-dimensional vector with `x = Σ_l x_l`.
#[derive(Debug, Clone)]
pub struct Cluster {
    slices: Vec<Vec<f64>>,
    n: usize,
}

impl Cluster {
    /// Builds a cluster from per-node dense slices. All slices must share
    /// one length, contain only finite values (a NaN would silently poison
    /// every downstream aggregate), and at least one node is required.
    pub fn new(slices: Vec<Vec<f64>>) -> Result<Self, LinalgError> {
        let n = match slices.first() {
            Some(s) if !s.is_empty() => s.len(),
            _ => return Err(LinalgError::Empty { op: "cluster" }),
        };
        for (l, s) in slices.iter().enumerate() {
            if s.len() != n {
                return Err(LinalgError::DimensionMismatch {
                    op: "cluster",
                    expected: (n, 1),
                    actual: (s.len(), l),
                });
            }
            if s.iter().any(|v| !v.is_finite()) {
                return Err(LinalgError::InvalidParameter {
                    name: "slices",
                    message: "slice values must be finite",
                });
            }
        }
        Ok(Cluster { slices, n })
    }

    /// Number of nodes `L`.
    pub fn l(&self) -> usize {
        self.slices.len()
    }

    /// Key-space size `N`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Borrows node `l`'s slice.
    pub fn slice(&self, l: usize) -> &[f64] {
        &self.slices[l]
    }

    /// All slices.
    pub fn slices(&self) -> &[Vec<f64>] {
        &self.slices
    }

    /// The ground-truth aggregate `x = Σ_l x_l` (what an omniscient
    /// aggregator would compute — protocols are scored against this).
    pub fn aggregate(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.n];
        for s in &self.slices {
            for (o, v) in out.iter_mut().zip(s) {
                *o += *v;
            }
        }
        out
    }

    /// Non-zero counts per node — the `nᵢ` of the keyid-value ALL cost.
    pub fn nonzeros_per_node(&self) -> Vec<usize> {
        self.slices
            .iter()
            .map(|s| s.iter().filter(|&&v| v != 0.0).count())
            .collect()
    }

    /// Adds a node (the paper's "a new data center joins the network").
    pub fn add_node(&mut self, slice: Vec<f64>) -> Result<usize, LinalgError> {
        if slice.len() != self.n {
            return Err(LinalgError::DimensionMismatch {
                op: "add_node",
                expected: (self.n, 1),
                actual: (slice.len(), 1),
            });
        }
        if slice.iter().any(|v| !v.is_finite()) {
            return Err(LinalgError::InvalidParameter {
                name: "slice",
                message: "slice values must be finite",
            });
        }
        self.slices.push(slice);
        Ok(self.slices.len() - 1)
    }

    /// Removes a node, returning its slice. Errors when it would leave the
    /// cluster empty or the index is out of range.
    pub fn remove_node(&mut self, l: usize) -> Result<Vec<f64>, LinalgError> {
        if l >= self.slices.len() {
            return Err(LinalgError::InvalidParameter {
                name: "l",
                message: "node index out of range",
            });
        }
        if self.slices.len() == 1 {
            return Err(LinalgError::InvalidParameter {
                name: "l",
                message: "cannot remove the last node",
            });
        }
        Ok(self.slices.remove(l))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster() -> Cluster {
        Cluster::new(vec![vec![1.0, 2.0, 3.0], vec![4.0, 0.0, -3.0]]).unwrap()
    }

    #[test]
    fn dimensions_and_aggregate() {
        let c = cluster();
        assert_eq!(c.l(), 2);
        assert_eq!(c.n(), 3);
        assert_eq!(c.aggregate(), vec![5.0, 2.0, 0.0]);
        assert_eq!(c.slice(1), &[4.0, 0.0, -3.0]);
    }

    #[test]
    fn rejects_empty_and_ragged() {
        assert!(Cluster::new(vec![]).is_err());
        assert!(Cluster::new(vec![vec![]]).is_err());
        assert!(Cluster::new(vec![vec![1.0], vec![1.0, 2.0]]).is_err());
    }

    #[test]
    fn rejects_non_finite_values() {
        assert!(Cluster::new(vec![vec![1.0, f64::NAN]]).is_err());
        assert!(Cluster::new(vec![vec![f64::INFINITY, 0.0]]).is_err());
        let mut c = cluster();
        assert!(c.add_node(vec![1.0, f64::NAN, 0.0]).is_err());
        assert_eq!(c.l(), 2, "rejected node must not be added");
    }

    #[test]
    fn nonzeros_counted_per_node() {
        let c = cluster();
        assert_eq!(c.nonzeros_per_node(), vec![3, 2]);
    }

    #[test]
    fn add_and_remove_nodes() {
        let mut c = cluster();
        let id = c.add_node(vec![1.0, 1.0, 1.0]).unwrap();
        assert_eq!(id, 2);
        assert_eq!(c.aggregate(), vec![6.0, 3.0, 1.0]);
        let removed = c.remove_node(0).unwrap();
        assert_eq!(removed, vec![1.0, 2.0, 3.0]);
        assert_eq!(c.aggregate(), vec![5.0, 1.0, -2.0]);
        assert!(c.add_node(vec![1.0]).is_err());
        assert!(c.remove_node(9).is_err());
    }

    #[test]
    fn cannot_remove_last_node() {
        let mut c = Cluster::new(vec![vec![1.0]]).unwrap();
        assert!(c.remove_node(0).is_err());
    }
}
