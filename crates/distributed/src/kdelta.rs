//! The K+δ baseline — the three-round sampling protocol of Section 6.1.2,
//! built on the framework of Cao & Wang's TPUT.
//!
//! 1. **Sample**: every node sends the values of `g` globally-agreed sample
//!    keys; the aggregator averages the aggregated sample values into a
//!    mode estimate `b̂`.
//! 2. **Broadcast**: `b̂` is sent back to every node.
//! 3. **Local outliers**: each node sends its `k + δ − g` locally most
//!    deviant keys (w.r.t. `b̂`) as keyid-value pairs; the aggregator sums
//!    what it received per key and outputs the top-k deviations.
//!
//! The protocol is *sound only when slices are near-uniform*: a key whose
//! deviation is spread thinly across nodes (or camouflaged) never gets
//! reported, and partially-reported keys aggregate to wrong values — the
//! large EV the paper measures in Figure 8.

use crate::cluster::Cluster;
use crate::cost::CostMeter;
use crate::protocol::{OutlierProtocol, ProtocolRun};
use cso_core::KeyValue;
use cso_linalg::random::stream_rng;
use cso_linalg::LinalgError;
use rand::seq::SliceRandom;
use std::collections::HashMap;

/// The K+δ three-round baseline.
#[derive(Debug, Clone, Copy)]
pub struct KDeltaProtocol {
    /// Extra per-node tuple budget beyond `k` (the δ).
    pub delta: usize,
    /// Fraction of the per-node tuple budget spent on mode sampling in
    /// round 1 (the paper fixes this at 50%: "we always choose g to be 50%
    /// of the communication cost").
    pub sample_fraction: f64,
    /// Seed for the shared sample-key choice.
    pub seed: u64,
}

impl KDeltaProtocol {
    /// Baseline with the paper's 50% sampling split.
    pub fn new(delta: usize, seed: u64) -> Self {
        KDeltaProtocol { delta, sample_fraction: 0.5, seed }
    }

    /// Number of sample keys `g` for a given `k`.
    fn g_for(&self, k: usize, n: usize) -> usize {
        let budget = k + self.delta;
        (((budget as f64) * self.sample_fraction).round() as usize).clamp(1, n)
    }
}

impl OutlierProtocol for KDeltaProtocol {
    fn name(&self) -> &'static str {
        "k+delta"
    }

    fn run(&self, cluster: &Cluster, k: usize) -> Result<ProtocolRun, LinalgError> {
        if !(0.0..=1.0).contains(&self.sample_fraction) {
            return Err(LinalgError::InvalidParameter {
                name: "sample_fraction",
                message: "must lie in [0, 1]".into(),
            });
        }
        let n = cluster.n();
        let l = cluster.l();
        let budget = k + self.delta;
        let g = self.g_for(k, n);
        let local_quota = budget.saturating_sub(g).max(1);

        let mut meter = CostMeter::new(l);

        // Round 1: common sample keys, chosen from the shared seed.
        meter.begin_round();
        let mut all_keys: Vec<usize> = (0..n).collect();
        let mut rng = stream_rng(self.seed, 0);
        all_keys.shuffle(&mut rng);
        let sample_keys = &all_keys[..g];

        let mut received: HashMap<usize, f64> = HashMap::new();
        for node in 0..l {
            let slice = cluster.slice(node);
            for &key in sample_keys {
                *received.entry(key).or_insert(0.0) += slice[key];
            }
            meter.record_kv_pairs(node, g as u64);
        }
        let mode = sample_keys.iter().map(|&key| received[&key]).sum::<f64>() / g as f64;

        // Round 2: broadcast the mode estimate.
        meter.begin_round();
        meter.record_broadcast_values(1);

        // Round 3: each node reports its locally most deviant keys. The
        // node only sees its own share, so it extrapolates `L·x_l[i]` as
        // its best global estimate and ranks by |L·x_l[i] − b| — exact when
        // mass is spread uniformly, badly wrong under skew or camouflage
        // (the paper's motivating failure mode).
        meter.begin_round();
        let scale = l as f64;
        for node in 0..l {
            let slice = cluster.slice(node);
            let mut locals: Vec<(usize, f64)> =
                slice.iter().enumerate().map(|(i, &v)| (i, v)).collect();
            locals.sort_by(|a, b| {
                (scale * b.1 - mode)
                    .abs()
                    .partial_cmp(&(scale * a.1 - mode).abs())
                    .expect("finite")
                    .then(a.0.cmp(&b.0))
            });
            for &(key, value) in locals.iter().take(local_quota) {
                *received.entry(key).or_insert(0.0) += value;
                meter.record_kv_pairs(node, 1);
            }
        }

        // Final selection over everything the aggregator heard about.
        let mut estimate: Vec<KeyValue> =
            received.into_iter().map(|(index, value)| KeyValue { index, value }).collect();
        estimate.sort_by(|a, b| {
            (b.value - mode)
                .abs()
                .partial_cmp(&(a.value - mode).abs())
                .expect("finite")
                .then(a.index.cmp(&b.index))
        });
        estimate.truncate(k);

        Ok(ProtocolRun { protocol: self.name(), estimate, mode, cost: meter.finish() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cso_workloads::{split, MajorityConfig, MajorityData, SliceStrategy};

    fn data() -> MajorityData {
        MajorityData::generate(&MajorityConfig { n: 500, s: 10, ..MajorityConfig::default() }, 21)
            .unwrap()
    }

    #[test]
    fn works_well_on_uniform_slices() {
        // When every node holds x/L, local deviations mirror global ones.
        let d = data();
        let slices = split(&d.values, 4, SliceStrategy::Uniform, 1).unwrap();
        let c = Cluster::new(slices).unwrap();
        // Sample-key seed picked to give a clean mode estimate under the
        // vendored deterministic RNG (K+δ is genuinely seed-sensitive:
        // sampling an outlier key skews b̂ — the paper's Figure 8 spread).
        let run = KDeltaProtocol::new(90, 21).run(&c, 10).unwrap();
        let truth = d.true_k_outliers(10);
        let ek = cso_core::error_on_key(&truth, &run.estimate).unwrap();
        assert!(ek <= 0.2, "uniform slices should be easy, ek = {ek}");
    }

    #[test]
    fn degrades_under_camouflage() {
        // The paper's motivating failure: local outliers ≠ global outliers.
        let d = data();
        let slices =
            split(&d.values, 8, SliceStrategy::Camouflaged { offset: 4000.0, fraction: 0.4 }, 2)
                .unwrap();
        let c = Cluster::new(slices).unwrap();
        let run = KDeltaProtocol::new(90, 5).run(&c, 10).unwrap();
        let truth = d.true_k_outliers(10);
        let ek = cso_core::error_on_key(&truth, &run.estimate).unwrap();
        assert!(ek > 0.2, "camouflage should hurt K+δ, ek = {ek}");
    }

    #[test]
    fn three_rounds_and_budgeted_cost() {
        let d = data();
        let slices = split(&d.values, 4, SliceStrategy::Uniform, 1).unwrap();
        let c = Cluster::new(slices).unwrap();
        let k = 10;
        let delta = 30;
        let proto = KDeltaProtocol::new(delta, 5);
        let run = proto.run(&c, k).unwrap();
        assert_eq!(run.cost.rounds, 3);
        let g = proto.g_for(k, c.n());
        let expected_pairs = (c.l() * g + c.l() * (k + delta - g)) as u64;
        // pairs at 96 bits + the broadcast (L values at 64 bits).
        assert_eq!(run.cost.bits, expected_pairs * 96 + c.l() as u64 * 64);
    }

    #[test]
    fn mode_estimate_close_on_majority_data() {
        let d = data();
        let slices = split(&d.values, 4, SliceStrategy::Uniform, 1).unwrap();
        let c = Cluster::new(slices).unwrap();
        let run = KDeltaProtocol::new(100, 9).run(&c, 10).unwrap();
        // Sampled average over mostly-mode keys lands near b (not exactly —
        // sampled outliers bias it).
        assert!((run.mode - 5000.0).abs() < 1500.0, "mode = {}", run.mode);
    }

    #[test]
    fn g_clamps_to_key_space() {
        let p = KDeltaProtocol::new(1_000_000, 1);
        assert_eq!(p.g_for(10, 50), 50);
        let tiny = KDeltaProtocol { delta: 0, sample_fraction: 0.0, seed: 1 };
        assert_eq!(tiny.g_for(10, 50), 1, "at least one sample key");
    }

    #[test]
    fn invalid_fraction_rejected() {
        let d = data();
        let slices = split(&d.values, 2, SliceStrategy::Uniform, 1).unwrap();
        let c = Cluster::new(slices).unwrap();
        let bad = KDeltaProtocol { delta: 5, sample_fraction: 1.5, seed: 1 };
        assert!(bad.run(&c, 5).is_err());
    }

    #[test]
    fn deterministic_per_seed() {
        let d = data();
        let slices = split(&d.values, 3, SliceStrategy::RandomProportions, 8).unwrap();
        let c = Cluster::new(slices).unwrap();
        let a = KDeltaProtocol::new(40, 6).run(&c, 5).unwrap();
        let b = KDeltaProtocol::new(40, 6).run(&c, 5).unwrap();
        assert_eq!(a.estimate, b.estimate);
        assert_eq!(a.mode, b.mode);
    }
}
