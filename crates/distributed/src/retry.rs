//! Retransmission policy for the lossy transport.
//!
//! Pure arithmetic over the virtual clock of [`crate::fault`]: a
//! [`RetryPolicy`] decides how many times a node retransmits, how long it
//! backs off between attempts (exponential with bounded, deterministic
//! jitter), and when the aggregator stops waiting for a node altogether.
//! Nothing here sleeps; schedules are integer ticks, so policy behaviour is
//! exactly testable.

use cso_linalg::random::derive_seed;

/// When a node's transmission should be retried and when it should be
/// abandoned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total transmission attempts per node (1 = never retransmit).
    pub max_attempts: u32,
    /// Backoff before the first retransmission, in virtual ticks.
    pub base_backoff_ticks: u64,
    /// Ceiling on a single backoff interval.
    pub max_backoff_ticks: u64,
    /// Seed for the deterministic backoff jitter.
    pub jitter_seed: u64,
    /// Per-node deadline: once a node's elapsed virtual time passes this,
    /// the aggregator gives up on it (it joins the dropped set).
    pub timeout_ticks: u64,
}

impl Default for RetryPolicy {
    /// Sensible defaults: 4 attempts, backoff 2·2^i ticks capped at 16,
    /// 64-tick node deadline.
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_backoff_ticks: 2,
            max_backoff_ticks: 16,
            jitter_seed: 0x5EED,
            timeout_ticks: 64,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retransmits (one attempt, generous deadline).
    pub fn no_retry() -> Self {
        RetryPolicy { max_attempts: 1, ..RetryPolicy::default() }
    }

    /// Overrides the attempt budget.
    pub fn with_max_attempts(mut self, attempts: u32) -> Self {
        assert!(attempts >= 1, "at least one attempt is required");
        self.max_attempts = attempts;
        self
    }

    /// Overrides the per-node deadline.
    pub fn with_timeout_ticks(mut self, ticks: u64) -> Self {
        self.timeout_ticks = ticks;
        self
    }

    /// Backoff in ticks before retransmission number `retry` (1-based: the
    /// wait between attempt `retry-1` and attempt `retry`) from `node`.
    /// Exponential — `base · 2^(retry-1)` capped at `max_backoff_ticks` —
    /// plus a deterministic jitter in `[0, base]` derived from
    /// `(jitter_seed, node, retry)` so simultaneous retransmitters
    /// desynchronize reproducibly.
    pub fn backoff_ticks(&self, node: usize, retry: u32) -> u64 {
        assert!(retry >= 1, "retry is 1-based");
        let exp = self
            .base_backoff_ticks
            .saturating_mul(1u64 << (retry - 1).min(32))
            .min(self.max_backoff_ticks);
        let jitter = if self.base_backoff_ticks == 0 {
            0
        } else {
            derive_seed(self.jitter_seed, derive_seed(node as u64, retry as u64))
                % (self.base_backoff_ticks + 1)
        };
        exp + jitter
    }

    /// True when `elapsed_ticks` of virtual time has passed the node
    /// deadline.
    pub fn timed_out(&self, elapsed_ticks: u64) -> bool {
        elapsed_ticks > self.timeout_ticks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_exponentially_up_to_cap() {
        let p = RetryPolicy {
            base_backoff_ticks: 2,
            max_backoff_ticks: 16,
            jitter_seed: 1,
            ..RetryPolicy::default()
        };
        // Strip jitter by comparing lower bounds: attempt i waits at least
        // base·2^(i-1), capped.
        for retry in 1..8u32 {
            let b = p.backoff_ticks(0, retry);
            let floor = (2u64 << (retry - 1)).min(16);
            assert!(b >= floor, "retry {retry}: {b} < {floor}");
            assert!(b <= 16 + 2, "retry {retry}: {b} exceeds cap + jitter");
        }
    }

    #[test]
    fn jitter_is_deterministic_and_desynchronizes_nodes() {
        let p = RetryPolicy::default();
        assert_eq!(p.backoff_ticks(3, 2), p.backoff_ticks(3, 2));
        // Across many nodes the same retry number must not always produce
        // one identical wait (that is the thundering herd jitter prevents).
        let waits: std::collections::BTreeSet<u64> =
            (0..32).map(|node| p.backoff_ticks(node, 1)).collect();
        assert!(waits.len() > 1, "all nodes backed off identically: {waits:?}");
    }

    #[test]
    fn zero_base_means_no_jitter() {
        let p =
            RetryPolicy { base_backoff_ticks: 0, max_backoff_ticks: 0, ..RetryPolicy::default() };
        for retry in 1..5 {
            assert_eq!(p.backoff_ticks(0, retry), 0);
        }
    }

    #[test]
    fn timeout_is_a_strict_threshold() {
        let p = RetryPolicy::default().with_timeout_ticks(10);
        assert!(!p.timed_out(0));
        assert!(!p.timed_out(10));
        assert!(p.timed_out(11));
    }

    #[test]
    fn no_retry_uses_single_attempt() {
        assert_eq!(RetryPolicy::no_retry().max_attempts, 1);
    }

    #[test]
    #[should_panic(expected = "at least one attempt")]
    fn zero_attempts_rejected() {
        let _ = RetryPolicy::default().with_max_attempts(0);
    }
}
