//! Degraded-mode aggregation: the CS protocol under node loss.
//!
//! The sketch sum `y = Σ_{l∈S} Φ0·x_l` is a *valid* measurement for any
//! subset `S` of nodes — it measures the partial aggregate `x_S = Σ_{l∈S}
//! x_l` (equation (1) restricted to the survivors). So when retries are
//! exhausted the aggregator does not fail: it runs BOMP on the partial sum
//! and reports exactly which nodes contributed. This is the structural
//! advantage of a *linear* sketch over the keyid-value baselines, whose
//! partial aggregates silently mix complete and incomplete keys.
//!
//! [`CsProtocol::run_degraded`] drives one fault-injected execution:
//! frames flow through a [`LossyChannel`], corrupt frames are rejected by
//! the CRC before any byte is interpreted, retransmissions follow a
//! [`RetryPolicy`] on the virtual clock, and duplicates are ignored by the
//! [`SketchCollector`]'s `(node, seed)` dedup — retransmission is
//! idempotent by construction.

use crate::cluster::Cluster;
use crate::cost::CostMeter;
use crate::cs::CsProtocol;
use crate::fault::{Delivery, FaultPlan, FaultStats, LossyChannel};
use crate::protocol::{OutlierProtocol, ProtocolRun};
use crate::quantize::{self, SketchEncoding};
use crate::retry::RetryPolicy;
use crate::wire;
use cso_core::KeyValue;
use cso_linalg::{LinalgError, Vector};
use cso_obs::{Recorder, Value};
use std::collections::{BTreeMap, BTreeSet};

/// Virtual ticks one transmission attempt takes when the channel does not
/// straggle.
const TRANSIT_TICKS: u64 = 1;

/// Outcome of offering a sketch to the [`SketchCollector`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Offer {
    /// First sketch from this `(node, seed)` — folded into the sum.
    Accepted,
    /// Already seen — ignored (retransmits and network duplicates are
    /// idempotent).
    Duplicate,
}

/// Accumulates node sketches into the aggregate measurement, deduplicating
/// by `(node, seed)` so duplicated or retransmitted frames never double-
/// count a node's contribution. The aggregate is maintained as the
/// canonical [dyadic fold] over node ids, so a degraded (surviving-subset)
/// measurement is bit-identical to what any other path — flat server,
/// relay tier, in-process reference — computes over the same survivors.
///
/// [dyadic fold]: crate::fold::dyadic_fold
#[derive(Debug, Clone)]
pub struct SketchCollector {
    m: usize,
    sum: Vector,
    sketches: BTreeMap<u32, Vector>,
    seen: BTreeSet<(u32, u64)>,
    duplicates_ignored: u64,
}

impl SketchCollector {
    /// An empty collector for `m`-length sketches.
    pub fn new(m: usize) -> Self {
        SketchCollector {
            m,
            sum: Vector::zeros(m),
            sketches: BTreeMap::new(),
            seen: BTreeSet::new(),
            duplicates_ignored: 0,
        }
    }

    /// Folds `sketch` into the sum unless this `(node, seed)` already
    /// contributed. Errors only on a length mismatch.
    pub fn offer(&mut self, node: u32, seed: u64, sketch: &Vector) -> Result<Offer, LinalgError> {
        if sketch.len() != self.m {
            return Err(LinalgError::DimensionMismatch {
                op: "offer",
                expected: (self.m, 1),
                actual: (sketch.len(), 1),
            });
        }
        if !self.seen.insert((node, seed)) {
            self.duplicates_ignored += 1;
            return Ok(Offer::Duplicate);
        }
        match self.sketches.get_mut(&node) {
            // Same node under a second seed: linearity lets its total
            // contribution stay one fold member.
            Some(existing) => existing.add_assign(sketch)?,
            None => {
                self.sketches.insert(node, sketch.clone());
            }
        }
        let members: Vec<(usize, &Vector)> =
            self.sketches.iter().map(|(id, s)| (*id as usize, s)).collect();
        self.sum = crate::fold::dyadic_fold(self.m, &members);
        Ok(Offer::Accepted)
    }

    /// The partial aggregate measurement `Σ_{l∈S} y_l` so far.
    pub fn sum(&self) -> &Vector {
        &self.sum
    }

    /// Node ids that have contributed, ascending.
    pub fn nodes(&self) -> Vec<u32> {
        self.seen.iter().map(|&(node, _)| node).collect()
    }

    /// Number of distinct contributions.
    pub fn len(&self) -> usize {
        self.seen.len()
    }

    /// True when nothing has been collected.
    pub fn is_empty(&self) -> bool {
        self.seen.is_empty()
    }

    /// How many offers were ignored as duplicates.
    pub fn duplicates_ignored(&self) -> u64 {
        self.duplicates_ignored
    }
}

/// Result of one fault-injected, possibly-partial protocol execution.
#[derive(Debug, Clone)]
pub struct DegradedRun {
    /// The recovery over the surviving partial aggregate. `cost` is real
    /// framed bytes including every retransmission attempt.
    pub run: ProtocolRun,
    /// Nodes whose sketch reached the aggregator.
    pub surviving_nodes: Vec<usize>,
    /// Nodes lost to exhausted retries or the deadline.
    pub dropped_nodes: Vec<usize>,
    /// Transmission attempts beyond each node's first.
    pub retransmissions: u64,
    /// Frames the wire checksum rejected (each triggered a retransmit).
    pub corrupt_rejected: u64,
    /// Frames ignored because their `(node, seed)` had already contributed.
    pub duplicates_ignored: u64,
    /// Nodes abandoned because their virtual deadline passed.
    pub timeouts: u64,
    /// Virtual time the slowest node took (nodes transmit in parallel).
    pub elapsed_ticks: u64,
    /// What the channel actually injected.
    pub fault_stats: FaultStats,
}

impl DegradedRun {
    /// Fraction of the cluster that contributed to the aggregate.
    pub fn surviving_fraction(&self) -> f64 {
        let total = self.surviving_nodes.len() + self.dropped_nodes.len();
        if total == 0 {
            0.0
        } else {
            self.surviving_nodes.len() as f64 / total as f64
        }
    }
}

impl CsProtocol {
    /// Runs the protocol over a lossy transport, degrading gracefully to
    /// the surviving subset when retries are exhausted.
    ///
    /// Every attempt's framed bytes are charged to the cost meter — a
    /// dropped or corrupt frame still crossed the wire — so the reported
    /// [`crate::cost::CommunicationCost`] prices fault recovery honestly.
    /// Errors only on invalid configuration or when *no* node survives.
    pub fn run_degraded(
        &self,
        cluster: &Cluster,
        k: usize,
        encoding: SketchEncoding,
        plan: &FaultPlan,
        policy: &RetryPolicy,
    ) -> Result<DegradedRun, LinalgError> {
        self.run_degraded_traced(cluster, k, encoding, plan, policy, &Recorder::disabled())
    }

    /// As [`CsProtocol::run_degraded`], recording the execution into `rec`.
    ///
    /// The trace is one `protocol.cs.degraded` span containing
    /// `sketch.build`, `transport` (one `transport.node` event per node with
    /// its attempt count, survival, and virtual elapsed ticks), and
    /// `recovery`. The recorder's tick advances by the round's elapsed
    /// virtual time. Published metrics: the `comm.*` counters (equal to the
    /// returned [`crate::cost::CommunicationCost`] exactly), the transport
    /// counters `retry.retransmissions` / `transport.corrupt_rejected` /
    /// `transport.duplicates` / `transport.timeouts` /
    /// `nodes.survived` / `nodes.dropped`, the channel's `fault.*`
    /// counters, and the `transport.surviving_fraction` gauge.
    pub fn run_degraded_traced(
        &self,
        cluster: &Cluster,
        k: usize,
        encoding: SketchEncoding,
        plan: &FaultPlan,
        policy: &RetryPolicy,
        rec: &Recorder,
    ) -> Result<DegradedRun, LinalgError> {
        let n = cluster.n();
        let engine = self.engine(n)?;

        let _proto_span = rec.span_with(
            "protocol.cs.degraded",
            &[
                ("nodes", Value::U64(cluster.l() as u64)),
                ("n", Value::U64(n as u64)),
                ("m", Value::U64(self.m as u64)),
                ("k", Value::U64(k as u64)),
            ],
        );

        let mut channel = LossyChannel::new(plan);
        let mut collector = SketchCollector::new(self.m);
        let mut meter = CostMeter::new(cluster.l());
        meter.begin_round();

        let mut surviving_nodes = Vec::new();
        let mut dropped_nodes = Vec::new();
        let mut retransmissions = 0u64;
        let mut corrupt_rejected = 0u64;
        let mut timeouts = 0u64;
        let mut elapsed_ticks = 0u64;
        let mut tuples_sent = 0u64;

        // Node frames are identical across attempts — retransmits are
        // idempotent and the collector dedups by (node, seed). Measurement
        // and framing are independent per node, so they run on the
        // executor; the lossy transport below stays sequential because the
        // channel's fault schedule and the cost meter are order-sensitive.
        let frames_by_node: Vec<Vec<u8>> = {
            let _s = rec.span("sketch.build");
            let nodes: Vec<usize> = (0..cluster.l()).collect();
            let (result, stats) = cso_exec::try_par_map(&self.exec, &nodes, |_, &node| {
                let sketch = engine.sketch(cluster.slice(node))?;
                Ok::<_, LinalgError>(wire::encode(&wire::Message::Sketch {
                    node: node as u32,
                    seed: self.seed,
                    payload: quantize::encode(&sketch, encoding),
                }))
            });
            stats.record(rec);
            result?
        };

        let transport_span = rec.span_with("transport", &[("round", Value::U64(1))]);
        for (node, frame) in frames_by_node.iter().enumerate() {
            let mut node_elapsed = 0u64;
            let mut survived = false;
            let mut attempts_sent = 0u64;
            'attempts: for attempt in 0..policy.max_attempts {
                if attempt > 0 {
                    node_elapsed += policy.backoff_ticks(node, attempt);
                    if policy.timed_out(node_elapsed) {
                        // The backoff alone crossed the deadline — this
                        // retry is never sent.
                        timeouts += 1;
                        break 'attempts;
                    }
                    retransmissions += 1;
                }
                // The frame goes on the wire whatever happens to it next.
                meter.record_wire_bytes(node, frame.len() as u64);
                tuples_sent += self.m as u64;
                attempts_sent += 1;
                node_elapsed += TRANSIT_TICKS;

                match channel.transmit(node, attempt, frame) {
                    Delivery::Dropped => {}
                    Delivery::Delivered { frames, delay_ticks } => {
                        node_elapsed += delay_ticks;
                        if policy.timed_out(node_elapsed) {
                            // Arrived after the aggregator stopped waiting:
                            // the late frame is discarded unread.
                            timeouts += 1;
                            break 'attempts;
                        }
                        for received in &frames {
                            match wire::decode(received) {
                                Ok(wire::Message::Sketch { node: from, seed, payload })
                                    if seed == self.seed =>
                                {
                                    collector.offer(from, seed, &quantize::decode(&payload))?;
                                    survived = true;
                                }
                                // Wrong seed or non-sketch message: a peer
                                // misconfiguration, not a transport fault.
                                Ok(_) => {
                                    return Err(LinalgError::InvalidParameter {
                                        name: "wire",
                                        message: "unexpected message kind or seed".into(),
                                    });
                                }
                                Err(_) => corrupt_rejected += 1,
                            }
                        }
                        if survived {
                            break 'attempts;
                        }
                    }
                }
            }

            if survived {
                surviving_nodes.push(node);
            } else {
                dropped_nodes.push(node);
            }
            rec.event(
                "transport.node",
                &[
                    ("node", Value::U64(node as u64)),
                    ("attempts", Value::U64(attempts_sent)),
                    ("survived", Value::Bool(survived)),
                    ("elapsed_ticks", Value::U64(node_elapsed)),
                ],
            );
            if rec.is_enabled() {
                rec.histogram_record("transport.node_attempts", attempts_sent);
            }
            // Nodes transmit concurrently; the round lasts as long as the
            // slowest one.
            elapsed_ticks = elapsed_ticks.max(node_elapsed);
        }
        // Virtual time: the round lasts as long as its slowest node.
        rec.advance_ticks(elapsed_ticks);
        drop(transport_span);

        if collector.is_empty() {
            return Err(LinalgError::Empty { op: "degraded aggregation" });
        }

        let mut recovery = self.recovery;
        recovery.omp.max_iterations = self.budget_for(k).min(self.m);
        recovery.omp.exec = self.exec;
        let result = {
            let _r = rec.span("recovery");
            engine.recover_traced(collector.sum(), &recovery, rec)?
        };
        let estimate: Vec<KeyValue> =
            result.top_k(k).iter().map(|o| KeyValue { index: o.index, value: o.value }).collect();

        let mut cost = meter.finish();
        cost.tuples = tuples_sent;

        let fault_stats = channel.stats();
        cost.publish(rec);
        if rec.is_enabled() {
            for node in 0..cluster.l() {
                rec.histogram_record("comm.node_bits", meter.node_bits(node));
            }
            rec.counter_add("retry.retransmissions", retransmissions);
            rec.counter_add("transport.corrupt_rejected", corrupt_rejected);
            rec.counter_add("transport.duplicates", collector.duplicates_ignored());
            rec.counter_add("transport.timeouts", timeouts);
            rec.counter_add("nodes.survived", surviving_nodes.len() as u64);
            rec.counter_add("nodes.dropped", dropped_nodes.len() as u64);
            fault_stats.publish(rec);
            let total = (surviving_nodes.len() + dropped_nodes.len()) as f64;
            rec.gauge_set("transport.surviving_fraction", surviving_nodes.len() as f64 / total);
        }

        Ok(DegradedRun {
            run: ProtocolRun { protocol: self.name(), estimate, mode: result.mode, cost },
            surviving_nodes,
            dropped_nodes,
            retransmissions,
            corrupt_rejected,
            duplicates_ignored: collector.duplicates_ignored(),
            timeouts,
            elapsed_ticks,
            fault_stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::CHECKSUM_BYTES;
    use cso_core::BompConfig;
    use cso_workloads::{split, MajorityConfig, MajorityData, SliceStrategy};

    fn cluster_of(l: usize, seed: u64) -> (Cluster, MajorityData) {
        let data = MajorityData::generate(
            &MajorityConfig { n: 400, s: 8, ..MajorityConfig::default() },
            seed,
        )
        .unwrap();
        let slices = split(&data.values, l, SliceStrategy::RandomProportions, seed + 1).unwrap();
        (Cluster::new(slices).unwrap(), data)
    }

    fn proto() -> CsProtocol {
        CsProtocol::new(120, 7).with_recovery(BompConfig::for_k_outliers(8))
    }

    /// Framed bytes of one F64 sketch of length `m`.
    fn frame_bytes(m: usize) -> u64 {
        (1 + 1 + 4 + 8 + 1 + 4 + 8 * m + CHECKSUM_BYTES) as u64
    }

    #[test]
    fn fault_free_run_matches_wire_execution() {
        let (cluster, _) = cluster_of(4, 42);
        let p = proto();
        let clean = p.run_over_wire(&cluster, 8, SketchEncoding::F64).unwrap();
        let deg = p
            .run_degraded(
                &cluster,
                8,
                SketchEncoding::F64,
                &FaultPlan::none(),
                &RetryPolicy::no_retry(),
            )
            .unwrap();
        assert_eq!(deg.run.estimate, clean.estimate);
        assert!((deg.run.mode - clean.mode).abs() < 1e-12);
        assert_eq!(deg.run.cost.bits, clean.cost.bits);
        assert_eq!(deg.run.cost.tuples, clean.cost.tuples);
        assert_eq!(deg.surviving_nodes, vec![0, 1, 2, 3]);
        assert!(deg.dropped_nodes.is_empty());
        assert_eq!(deg.retransmissions, 0);
        assert_eq!(deg.surviving_fraction(), 1.0);
    }

    #[test]
    fn acceptance_two_of_eight_down_five_percent_corruption() {
        // The issue's acceptance scenario: 8 nodes, nodes 2 and 5 hard-
        // failed, 5% of frames corrupted in flight.
        let (cluster, _) = cluster_of(8, 42);
        let p = proto();
        let plan = FaultPlan::new(1234).fail_nodes(&[2, 5]).corrupt_rate(0.05);
        let policy = RetryPolicy::default();
        let deg = p.run_degraded(&cluster, 8, SketchEncoding::F64, &plan, &policy).unwrap();

        assert_eq!(deg.dropped_nodes, vec![2, 5]);
        assert_eq!(deg.surviving_nodes, vec![0, 1, 3, 4, 6, 7]);
        assert!((deg.surviving_fraction() - 0.75).abs() < 1e-12);

        // Recovery must equal the clean protocol on the surviving subset —
        // degraded mode is exact on the partial aggregate, and no corrupt
        // frame leaked garbage into the sum. The reindexed partial cluster
        // folds the survivors at ids 0..6 while the degraded path folds
        // them at their original ids {0,1,3,4,6,7}; those are two
        // different dyadic parenthesizations, so the comparison here is
        // index equality plus a last-ulp-scale tolerance. (Bit-identity at
        // *matching* ids is pinned by the wire-execution and relay tests.)
        let surviving: Vec<Vec<f64>> =
            deg.surviving_nodes.iter().map(|&l| cluster.slice(l).to_vec()).collect();
        let partial = Cluster::new(surviving).unwrap();
        let clean = p.run(&partial, 8).unwrap();
        let indices = |r: &ProtocolRun| r.estimate.iter().map(|kv| kv.index).collect::<Vec<_>>();
        assert_eq!(indices(&deg.run), indices(&clean));
        for (d, c) in deg.run.estimate.iter().zip(&clean.estimate) {
            let tol = 1e-9 * c.value.abs().max(1.0);
            assert!(
                (d.value - c.value).abs() <= tol,
                "index {}: {} vs {}",
                d.index,
                d.value,
                c.value
            );
        }
        assert!((deg.run.mode - clean.mode).abs() < 1e-9);

        // Every channel-injected corruption was caught by the checksum:
        // zero garbage decodes, each one retransmitted.
        assert_eq!(deg.corrupt_rejected, deg.fault_stats.corrupted);

        // Retransmissions happened (two dead nodes alone retry 3× each)
        // and every attempt's bytes are in the communication cost:
        // attempts sent = first tries + retransmissions, exactly.
        assert!(deg.retransmissions >= 6, "retransmissions = {}", deg.retransmissions);
        let attempts = cluster.l() as u64 + deg.retransmissions;
        assert_eq!(deg.fault_stats.attempts, attempts);
        assert_eq!(deg.run.cost.bits, attempts * frame_bytes(p.m) * 8);
        assert_eq!(deg.run.cost.tuples, attempts * p.m as u64);
    }

    #[test]
    fn determinism_same_plan_same_run() {
        let (cluster, _) = cluster_of(6, 9);
        let p = proto();
        let plan =
            FaultPlan::new(77).drop_rate(0.2).corrupt_rate(0.1).duplicate_rate(0.2).delay(0.2, 3);
        let policy = RetryPolicy::default();
        let a = p.run_degraded(&cluster, 8, SketchEncoding::F64, &plan, &policy).unwrap();
        let b = p.run_degraded(&cluster, 8, SketchEncoding::F64, &plan, &policy).unwrap();
        assert_eq!(a.run.estimate, b.run.estimate);
        assert_eq!(a.run.cost, b.run.cost);
        assert_eq!(a.surviving_nodes, b.surviving_nodes);
        assert_eq!(a.retransmissions, b.retransmissions);
        assert_eq!(a.elapsed_ticks, b.elapsed_ticks);
        assert_eq!(a.fault_stats, b.fault_stats);
    }

    /// Degraded runs are bit-identical across worker counts: the parallel
    /// section only builds per-node frames, and the fault-injected
    /// transport replays the same schedule on the calling thread.
    #[test]
    fn parallel_degraded_run_is_bit_identical_to_sequential() {
        use cso_exec::ExecConfig;
        let (cluster, _) = cluster_of(8, 42);
        let plan = FaultPlan::new(1234).fail_nodes(&[2, 5]).corrupt_rate(0.05);
        let policy = RetryPolicy::default();
        let seq = proto()
            .with_exec(ExecConfig::sequential())
            .run_degraded(&cluster, 8, SketchEncoding::F64, &plan, &policy)
            .unwrap();
        for workers in [2, 8] {
            let par = proto()
                .with_exec(ExecConfig::with_workers(workers))
                .run_degraded(&cluster, 8, SketchEncoding::F64, &plan, &policy)
                .unwrap();
            assert_eq!(par.run.estimate, seq.run.estimate, "workers = {workers}");
            assert_eq!(par.run.mode.to_bits(), seq.run.mode.to_bits());
            assert_eq!(par.run.cost, seq.run.cost);
            assert_eq!(par.surviving_nodes, seq.surviving_nodes);
            assert_eq!(par.fault_stats, seq.fault_stats);
            assert_eq!(par.elapsed_ticks, seq.elapsed_ticks);
        }
    }

    #[test]
    fn duplicates_do_not_double_count() {
        let (cluster, _) = cluster_of(5, 3);
        let p = proto();
        let plan = FaultPlan::new(4).duplicate_rate(1.0);
        let deg = p
            .run_degraded(&cluster, 8, SketchEncoding::F64, &plan, &RetryPolicy::no_retry())
            .unwrap();
        assert_eq!(deg.duplicates_ignored, 5, "every node's frame arrived twice");
        // The estimate equals the clean run: duplicate sketches were not
        // summed twice.
        let clean = p.run(&cluster, 8).unwrap();
        assert_eq!(deg.run.estimate, clean.estimate);
        assert!((deg.run.mode - clean.mode).abs() < 1e-9);
    }

    #[test]
    fn stragglers_past_deadline_are_dropped() {
        let (cluster, _) = cluster_of(4, 6);
        let p = proto();
        // Every delivery straggles ≥ 1 extra tick; the deadline is 1 tick,
        // so transit (1) + any straggle always arrives late.
        let plan = FaultPlan::new(8).delay(1.0, 50);
        let policy = RetryPolicy {
            max_attempts: 2,
            base_backoff_ticks: 1,
            max_backoff_ticks: 4,
            jitter_seed: 1,
            timeout_ticks: 1,
        };
        let result = p.run_degraded(&cluster, 8, SketchEncoding::F64, &plan, &policy);
        assert!(matches!(result, Err(LinalgError::Empty { .. })));
    }

    #[test]
    fn heavy_loss_recovers_when_retries_suffice() {
        let (cluster, _) = cluster_of(6, 20);
        let p = proto();
        // 40% loss, but 6 attempts: survival probability per node > 99.5%.
        let plan = FaultPlan::new(31).drop_rate(0.4);
        let policy = RetryPolicy::default().with_max_attempts(6).with_timeout_ticks(10_000);
        let deg = p.run_degraded(&cluster, 8, SketchEncoding::F64, &plan, &policy).unwrap();
        assert_eq!(deg.dropped_nodes, Vec::<usize>::new());
        assert!(deg.retransmissions > 0, "40% loss must force retransmits");
        let clean = p.run(&cluster, 8).unwrap();
        assert_eq!(deg.run.estimate, clean.estimate);
    }

    #[test]
    fn traced_degraded_counters_match_run_fields_exactly() {
        let (cluster, _) = cluster_of(8, 42);
        let p = proto();
        let plan = FaultPlan::new(1234).fail_nodes(&[2, 5]).corrupt_rate(0.05);
        let policy = RetryPolicy::default();
        let rec = Recorder::new();
        let deg =
            p.run_degraded_traced(&cluster, 8, SketchEncoding::F64, &plan, &policy, &rec).unwrap();

        // Tracing must not perturb the deterministic execution.
        let plain = p.run_degraded(&cluster, 8, SketchEncoding::F64, &plan, &policy).unwrap();
        assert_eq!(deg.run.estimate, plain.run.estimate);
        assert_eq!(deg.run.cost, plain.run.cost);
        assert_eq!(deg.fault_stats, plain.fault_stats);

        // Every published counter equals the corresponding DegradedRun
        // field exactly.
        let snap = rec.metrics_snapshot();
        assert_eq!(snap.counter("comm.bits"), Some(deg.run.cost.bits));
        assert_eq!(snap.counter("comm.tuples"), Some(deg.run.cost.tuples));
        assert_eq!(snap.counter("comm.rounds"), Some(1));
        assert_eq!(snap.counter("retry.retransmissions"), Some(deg.retransmissions));
        assert_eq!(snap.counter("transport.corrupt_rejected"), Some(deg.corrupt_rejected));
        assert_eq!(snap.counter("transport.duplicates"), Some(deg.duplicates_ignored));
        assert_eq!(snap.counter("transport.timeouts"), Some(deg.timeouts));
        assert_eq!(snap.counter("nodes.survived"), Some(deg.surviving_nodes.len() as u64));
        assert_eq!(snap.counter("nodes.dropped"), Some(deg.dropped_nodes.len() as u64));
        assert_eq!(snap.counter("fault.attempts"), Some(deg.fault_stats.attempts));
        assert_eq!(snap.counter("fault.dropped"), Some(deg.fault_stats.dropped));
        assert_eq!(snap.counter("fault.corrupted"), Some(deg.fault_stats.corrupted));
        assert_eq!(snap.gauge("transport.surviving_fraction"), Some(deg.surviving_fraction()));

        // The virtual clock advanced by the round's elapsed time, and one
        // transport.node event was recorded per node.
        assert_eq!(rec.tick(), deg.elapsed_ticks);
        assert_eq!(rec.events_named("transport.node").len(), cluster.l());
    }

    #[test]
    fn all_nodes_down_is_an_error() {
        let (cluster, _) = cluster_of(3, 2);
        let plan = FaultPlan::new(1).fail_nodes(&[0, 1, 2]);
        let result =
            proto().run_degraded(&cluster, 8, SketchEncoding::F64, &plan, &RetryPolicy::default());
        assert!(matches!(result, Err(LinalgError::Empty { .. })));
    }

    #[test]
    fn collector_rejects_wrong_length_and_dedups() {
        let mut c = SketchCollector::new(3);
        let y = Vector::from_vec(vec![1.0, 2.0, 3.0]);
        assert_eq!(c.offer(0, 9, &y).unwrap(), Offer::Accepted);
        assert_eq!(c.offer(0, 9, &y).unwrap(), Offer::Duplicate);
        assert_eq!(c.offer(1, 9, &y).unwrap(), Offer::Accepted);
        assert_eq!(c.len(), 2);
        assert_eq!(c.nodes(), vec![0, 1]);
        assert_eq!(c.duplicates_ignored(), 1);
        assert_eq!(c.sum().as_slice(), &[2.0, 4.0, 6.0]);
        let bad = Vector::from_vec(vec![1.0]);
        assert!(c.offer(2, 9, &bad).is_err());
    }
}
