//! # cso-distributed
//!
//! The distributed-aggregation substrate for the SIGMOD'15 compressive-
//! sensing outlier system: a simulated shared-nothing cluster, the global
//! key dictionary, exact communication-cost accounting, and the
//! single-round/multi-round protocols the paper evaluates:
//!
//! - [`CsProtocol`] — the paper's contribution: sketch, sum, BOMP-recover;
//! - [`AllProtocol`] — transmit everything (vectorized or keyid-value);
//! - [`KDeltaProtocol`] — the three-round K+δ sampling baseline;
//! - [`SketchAggregator`] — incremental maintenance under streaming data
//!   and data-center join/leave.
//!
//! All protocols implement [`OutlierProtocol`] and report a
//! [`CommunicationCost`] with exactly the paper's tuple encodings (64-bit
//! values, 96-bit keyid-value pairs).

#![warn(missing_docs)]

pub mod all;
pub mod cluster;
pub mod cost;
pub mod cs;
pub mod degraded;
pub mod dictionary;
pub mod fault;
pub mod fold;
pub mod incremental;
pub mod kdelta;
pub mod protocol;
pub mod quantize;
pub mod retry;
pub mod ta;
pub mod topology;
pub mod tput;
pub mod wire;

pub use all::{AllEncoding, AllProtocol};
pub use cluster::Cluster;
pub use cost::{
    all_kv_cost, all_vectorized_cost, cs_cost, CommunicationCost, CostMeter, KV_PAIR_BITS,
    VALUE_BITS,
};
pub use cs::CsProtocol;
pub use degraded::{DegradedRun, Offer, SketchCollector};
pub use dictionary::KeyDictionary;
pub use fault::{Delivery, FaultPlan, FaultStats, LossyChannel, VirtualClock};
pub use fold::dyadic_fold;
pub use incremental::SketchAggregator;
pub use kdelta::KDeltaProtocol;
pub use protocol::{OutlierProtocol, ProtocolRun};
pub use quantize::{decode as decode_sketch, encode as encode_sketch, SketchEncoding};
pub use retry::RetryPolicy;
pub use ta::TaProtocol;
pub use topology::{AggregationTree, TopologySpec, TreeNode};
pub use tput::TputProtocol;
