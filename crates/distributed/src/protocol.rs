//! The common protocol interface every aggregation strategy implements.

use crate::cluster::Cluster;
use crate::cost::CommunicationCost;
use cso_core::KeyValue;
use cso_linalg::LinalgError;

/// Result of one protocol execution on a cluster.
#[derive(Debug, Clone)]
pub struct ProtocolRun {
    /// Protocol name (for harness output).
    pub protocol: &'static str,
    /// The estimated k-outliers, ordered by decreasing |value − mode|.
    pub estimate: Vec<KeyValue>,
    /// The protocol's estimate of the mode `b`.
    pub mode: f64,
    /// Exact communication spent.
    pub cost: CommunicationCost,
}

/// A single-shot distributed k-outlier protocol.
pub trait OutlierProtocol {
    /// Short stable name for reports.
    fn name(&self) -> &'static str;

    /// Executes the protocol: nodes derive messages from their local slices,
    /// the aggregator combines them and outputs `k` estimated outliers plus
    /// a mode estimate, with every transmitted tuple accounted for.
    fn run(&self, cluster: &Cluster, k: usize) -> Result<ProtocolRun, LinalgError>;
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fixed;
    impl OutlierProtocol for Fixed {
        fn name(&self) -> &'static str {
            "fixed"
        }
        fn run(&self, cluster: &Cluster, k: usize) -> Result<ProtocolRun, LinalgError> {
            Ok(ProtocolRun {
                protocol: self.name(),
                estimate: (0..k.min(cluster.n()))
                    .map(|index| KeyValue { index, value: 0.0 })
                    .collect(),
                mode: 0.0,
                cost: CommunicationCost::default(),
            })
        }
    }

    #[test]
    fn trait_objects_work() {
        let p: Box<dyn OutlierProtocol> = Box::new(Fixed);
        let c = Cluster::new(vec![vec![1.0, 2.0]]).unwrap();
        let run = p.run(&c, 5).unwrap();
        assert_eq!(run.protocol, "fixed");
        assert_eq!(run.estimate.len(), 2);
    }
}
