//! The work-stealing thread pool.
//!
//! ## Execution model
//!
//! A task set is the index range `0..n`. At launch it is split into one
//! contiguous block per participant (the calling thread is participant 0);
//! each participant pops indices off the **front** of its own block and,
//! when empty, **steals the back half** of a victim's block. Ranges are a
//! single packed `AtomicU64` (`start << 32 | end`), so pops and steals are
//! lock-free CAS loops and every index is claimed exactly once.
//!
//! ## Determinism
//!
//! Which worker runs which task is scheduling-dependent, but results are
//! written into an index-addressed slot table and returned in task order —
//! callers that fold them sequentially (every caller in this workspace)
//! get bit-identical output to the `workers = 1` inline path.
//!
//! ## Safety
//!
//! Tasks borrow the caller's stack (`f`, the result slots, the stats
//! table) through a type-erased pointer. The invariant making that sound:
//! [`ThreadPool::run`] does not return until every helper that claimed the
//! job has finished, and helpers that did not claim never dereference the
//! context. Claims are capped at `participants - 1` and performed under
//! the pool mutex, so a late-waking worker can never touch a job whose
//! caller already returned.

use crate::stats::{ExecStats, WorkerStats};
use std::any::Any;
use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::Instant;

/// Hard cap on the workers of any pool or section — a guard against
/// runaway oversubscription, far above any sensible host parallelism.
pub const MAX_WORKERS: usize = 64;

thread_local! {
    static IN_POOL_TASK: Cell<bool> = const { Cell::new(false) };
}

/// True when the current thread is executing inside a pool task (either a
/// helper thread or a caller participating in its own section). Nested
/// sections use this to fall back to inline execution instead of
/// deadlocking on the pool's job lock.
pub(crate) fn in_pool_task() -> bool {
    IN_POOL_TASK.with(|f| f.get())
}

/// Runs `0..n` inline on the calling thread — the sequential reference
/// path. Panics in `f` propagate directly, as in any plain loop.
pub(crate) fn run_sequential<R, F>(n: usize, f: &F) -> (Vec<R>, ExecStats)
where
    F: Fn(usize) -> R,
{
    let start = Instant::now();
    let results: Vec<R> = (0..n).map(f).collect();
    (results, ExecStats::sequential(n as u64, start.elapsed().as_nanos() as u64))
}

// ---------------------------------------------------------------------------
// Packed index ranges
// ---------------------------------------------------------------------------

#[inline]
fn pack(start: u32, end: u32) -> u64 {
    (u64::from(start) << 32) | u64::from(end)
}

#[inline]
fn unpack(r: u64) -> (u32, u32) {
    ((r >> 32) as u32, r as u32)
}

/// Claims the front index of `range`, if any.
fn pop_front(range: &AtomicU64) -> Option<usize> {
    let mut cur = range.load(Ordering::SeqCst);
    loop {
        let (s, e) = unpack(cur);
        if s >= e {
            return None;
        }
        match range.compare_exchange_weak(cur, pack(s + 1, e), Ordering::SeqCst, Ordering::SeqCst) {
            Ok(_) => return Some(s as usize),
            Err(v) => cur = v,
        }
    }
}

/// Moves the back half of `victim` into `thief` (known empty). Returns
/// false when the victim had nothing to take.
fn steal_back_half(victim: &AtomicU64, thief: &AtomicU64) -> bool {
    let mut cur = victim.load(Ordering::SeqCst);
    loop {
        let (s, e) = unpack(cur);
        if s >= e {
            return false;
        }
        let take = (e - s).div_ceil(2);
        match victim.compare_exchange_weak(
            cur,
            pack(s, e - take),
            Ordering::SeqCst,
            Ordering::SeqCst,
        ) {
            Ok(_) => {
                thief.store(pack(e - take, e), Ordering::SeqCst);
                return true;
            }
            Err(v) => cur = v,
        }
    }
}

// ---------------------------------------------------------------------------
// Type-erased job context
// ---------------------------------------------------------------------------

/// One result slot, written by exactly the participant that claimed its
/// index (ranges partition `0..n`, so writes never alias).
struct ResultSlot<R>(std::cell::UnsafeCell<Option<R>>);

// SAFETY: each slot is written by exactly one thread (unique index claim)
// and read by the caller only after the completion handshake (a mutex
// acquire/release pair), which orders the write before the read.
unsafe impl<R: Send> Sync for ResultSlot<R> {}

/// Per-participant counters, owned by the caller's stack for one section.
struct SlotStats {
    tasks: AtomicU64,
    steals: AtomicU64,
    busy_ns: AtomicU64,
    initial_queue: u64,
}

struct Ctx<'a, R, F> {
    f: &'a F,
    results: &'a [ResultSlot<R>],
    ranges: &'a [AtomicU64],
    claimed: &'a [AtomicU32],
    stats: &'a [SlotStats],
    panic: &'a Mutex<Option<Box<dyn Any + Send>>>,
}

/// The participant body: pop own range, steal when empty, stop when no
/// work is visible anywhere. Task panics are caught and parked in
/// `ctx.panic` (first wins); the section re-raises after completion.
fn participate<R, F>(ctx: &Ctx<'_, R, F>, slot: usize)
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let start = Instant::now();
    let mut tasks = 0u64;
    let mut steals = 0u64;
    let p = ctx.ranges.len();
    IN_POOL_TASK.with(|flag| flag.set(true));
    loop {
        match pop_front(&ctx.ranges[slot]) {
            Some(i) => {
                ctx.claimed[i].store(slot as u32, Ordering::SeqCst);
                match catch_unwind(AssertUnwindSafe(|| (ctx.f)(i))) {
                    // SAFETY: index i is claimed by this participant only.
                    Ok(r) => unsafe { *ctx.results[i].0.get() = Some(r) },
                    Err(payload) => {
                        let mut slot = ctx.panic.lock().unwrap_or_else(|e| e.into_inner());
                        slot.get_or_insert(payload);
                    }
                }
                tasks += 1;
            }
            None => {
                let stolen = (1..p)
                    .map(|d| (slot + d) % p)
                    .any(|victim| steal_back_half(&ctx.ranges[victim], &ctx.ranges[slot]));
                if stolen {
                    steals += 1;
                } else {
                    break;
                }
            }
        }
    }
    IN_POOL_TASK.with(|flag| flag.set(false));
    let s = &ctx.stats[slot];
    s.tasks.store(tasks, Ordering::SeqCst);
    s.steals.store(steals, Ordering::SeqCst);
    s.busy_ns.store(start.elapsed().as_nanos() as u64, Ordering::SeqCst);
}

unsafe fn participate_erased<R, F>(ctx: *const (), slot: usize)
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    // SAFETY: `ctx` points at the live `Ctx` of the section that posted
    // this job; `run` keeps it alive until every claimant finished.
    let ctx = unsafe { &*(ctx as *const Ctx<'_, R, F>) };
    participate(ctx, slot);
}

#[derive(Clone, Copy)]
struct RawJob {
    run: unsafe fn(*const (), usize),
    ctx: *const (),
}

// SAFETY: the pointers are only dereferenced by claimed participants while
// the posting caller blocks in `run` (see module docs).
unsafe impl Send for RawJob {}

// ---------------------------------------------------------------------------
// The pool
// ---------------------------------------------------------------------------

struct PoolState {
    epoch: u64,
    job: Option<RawJob>,
    participants: usize,
    claims: usize,
    active: usize,
    shutdown: bool,
}

struct Shared {
    state: Mutex<PoolState>,
    work_cv: Condvar,
    done_cv: Condvar,
}

/// A persistent pool of helper threads executing indexed task sets.
///
/// A pool created with `ExecConfig { workers: w }` owns `w - 1` helper
/// threads; the calling thread is always participant 0 of a section, so a
/// 1-worker pool owns no threads at all. Dropping the pool joins every
/// helper (the shutdown handshake tested in `tests`).
pub struct ThreadPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    /// Section-serializing lock: one task set runs at a time per pool.
    job_lock: Mutex<()>,
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool").field("capacity", &self.capacity()).finish()
    }
}

impl ThreadPool {
    /// Builds a pool sized for `config` (helpers = `workers - 1`).
    pub fn new(config: &crate::ExecConfig) -> Self {
        let workers = config.workers.clamp(1, MAX_WORKERS);
        let shared = Arc::new(Shared {
            state: Mutex::new(PoolState {
                epoch: 0,
                job: None,
                participants: 1,
                claims: 0,
                active: 0,
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
        });
        let handles = (1..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("cso-exec-{i}"))
                    .spawn(move || helper_loop(&shared))
                    .expect("spawn pool worker")
            })
            .collect();
        ThreadPool { shared, handles, job_lock: Mutex::new(()) }
    }

    /// Maximum participants a section on this pool can have (helpers + 1).
    pub fn capacity(&self) -> usize {
        self.handles.len() + 1
    }

    /// Runs `f(0..n)` with up to `workers` participants (capped by this
    /// pool's [`ThreadPool::capacity`]) and returns results in task order.
    ///
    /// Concurrent sections on one pool are serialized. A panic in `f` is
    /// re-raised on the caller after all in-flight tasks finish.
    pub fn run<R, F>(&self, workers: usize, n: usize, f: &F) -> (Vec<R>, ExecStats)
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        let participants = workers.clamp(1, self.capacity()).min(n.max(1));
        if participants <= 1 || n <= 1 {
            return run_sequential(n, f);
        }
        assert!(n < u32::MAX as usize, "task sets are limited to u32 indices");

        let results: Vec<ResultSlot<R>> =
            (0..n).map(|_| ResultSlot(std::cell::UnsafeCell::new(None))).collect();
        let claimed: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(u32::MAX)).collect();
        // Even contiguous blocks, front-loaded remainder: deterministic.
        let base = n / participants;
        let rem = n % participants;
        let mut next = 0u32;
        let mut ranges = Vec::with_capacity(participants);
        let mut stats = Vec::with_capacity(participants);
        for i in 0..participants {
            let len = (base + usize::from(i < rem)) as u32;
            ranges.push(AtomicU64::new(pack(next, next + len)));
            stats.push(SlotStats {
                tasks: AtomicU64::new(0),
                steals: AtomicU64::new(0),
                busy_ns: AtomicU64::new(0),
                initial_queue: u64::from(len),
            });
            next += len;
        }
        let panic: Mutex<Option<Box<dyn Any + Send>>> = Mutex::new(None);
        let ctx = Ctx {
            f,
            results: &results,
            ranges: &ranges,
            claimed: &claimed,
            stats: &stats,
            panic: &panic,
        };
        let raw =
            RawJob { run: participate_erased::<R, F>, ctx: (&ctx as *const Ctx<'_, R, F>).cast() };

        let _section = self.job_lock.lock().unwrap_or_else(|e| e.into_inner());
        {
            let mut st = self.shared.state.lock().expect("pool state");
            st.epoch += 1;
            st.job = Some(raw);
            st.participants = participants;
            st.claims = 0;
            st.active = 0;
            drop(st);
            self.shared.work_cv.notify_all();
        }

        // The caller is participant 0. `participate` never unwinds (task
        // panics are parked in `ctx.panic`), so the completion wait below
        // always runs and `ctx` outlives every helper's borrow.
        participate(&ctx, 0);

        {
            let mut st = self.shared.state.lock().expect("pool state");
            while st.claims < st.participants - 1 || st.active > 0 {
                st = self.shared.done_cv.wait(st).expect("pool state");
            }
            st.job = None;
        }

        if let Some(payload) = panic.into_inner().unwrap_or_else(|e| e.into_inner()) {
            std::panic::resume_unwind(payload);
        }

        let out: Vec<R> = results
            .into_iter()
            .map(|slot| slot.0.into_inner().expect("every task index executed"))
            .collect();
        let per_worker: Vec<WorkerStats> = stats
            .iter()
            .map(|s| WorkerStats {
                tasks: s.tasks.load(Ordering::SeqCst),
                steals: s.steals.load(Ordering::SeqCst),
                busy_ns: s.busy_ns.load(Ordering::SeqCst),
                initial_queue: s.initial_queue,
            })
            .collect();
        let task_worker: Vec<u32> = claimed.iter().map(|c| c.load(Ordering::SeqCst)).collect();
        (out, ExecStats { per_worker, task_worker })
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            st.shutdown = true;
        }
        self.shared.work_cv.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn helper_loop(shared: &Shared) {
    let mut last_seen = 0u64;
    loop {
        let job;
        let slot;
        {
            let mut st = shared.state.lock().expect("pool state");
            loop {
                if st.shutdown {
                    return;
                }
                if st.job.is_some() && st.epoch != last_seen {
                    break;
                }
                st = shared.work_cv.wait(st).expect("pool state");
            }
            last_seen = st.epoch;
            if st.claims >= st.participants - 1 {
                // Section already fully staffed — skip this epoch.
                continue;
            }
            st.claims += 1;
            st.active += 1;
            slot = st.claims; // helper slots are 1-based
            job = st.job.expect("job present under claim");
        }
        // SAFETY: claimed under the mutex before the caller's completion
        // wait could pass, so the context is still alive.
        unsafe { (job.run)(job.ctx, slot) };
        {
            let mut st = shared.state.lock().expect("pool state");
            st.active -= 1;
            if st.active == 0 && st.claims == st.participants - 1 {
                shared.done_cv.notify_all();
            }
        }
    }
}

// ---------------------------------------------------------------------------
// The global pool
// ---------------------------------------------------------------------------

/// Returns the shared process-wide pool, grown (never shrunk) to at least
/// `workers` capacity. Growth swaps in a fresh pool; the old one is
/// retired once its in-flight sections complete.
pub fn global_pool(workers: usize) -> Arc<ThreadPool> {
    static REGISTRY: OnceLock<Mutex<Arc<ThreadPool>>> = OnceLock::new();
    let registry =
        REGISTRY.get_or_init(|| Mutex::new(Arc::new(ThreadPool::new(&crate::ExecConfig::auto()))));
    let mut pool = registry.lock().unwrap_or_else(|e| e.into_inner());
    let wanted = workers.clamp(1, MAX_WORKERS);
    if pool.capacity() < wanted {
        *pool = Arc::new(ThreadPool::new(&crate::ExecConfig::with_workers(wanted)));
    }
    Arc::clone(&pool)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ExecConfig;

    #[test]
    fn pool_shutdown_joins_all_helpers() {
        let pool = ThreadPool::new(&ExecConfig::with_workers(4));
        assert_eq!(pool.capacity(), 4);
        let (out, _) = pool.run(4, 100, &|i| i * 2);
        assert_eq!(out[99], 198);
        // Drop must return (joining all helpers) rather than hang; the
        // test harness's timeout is the hang detector.
        drop(pool);
    }

    #[test]
    fn one_worker_pool_spawns_no_threads() {
        let pool = ThreadPool::new(&ExecConfig::sequential());
        assert_eq!(pool.capacity(), 1);
        let (out, stats) = pool.run(1, 10, &|i| i + 1);
        assert_eq!(out, (1..=10).collect::<Vec<_>>());
        assert_eq!(stats.workers(), 1);
    }

    #[test]
    fn capacity_caps_section_width() {
        let pool = ThreadPool::new(&ExecConfig::with_workers(2));
        let (_, stats) = pool.run(16, 64, &|i| i);
        assert_eq!(stats.workers(), 2, "section width is capped by pool capacity");
    }

    #[test]
    fn back_to_back_sections_reuse_the_pool() {
        let pool = ThreadPool::new(&ExecConfig::with_workers(3));
        for round in 0..20 {
            let (out, _) = pool.run(3, 50, &|i| i + round);
            assert_eq!(out[49], 49 + round, "round {round}");
        }
    }

    #[test]
    fn global_pool_grows_monotonically() {
        let a = global_pool(2);
        assert!(a.capacity() >= 2);
        let b = global_pool(6);
        assert!(b.capacity() >= 6);
        let c = global_pool(3);
        assert!(c.capacity() >= 6, "the global pool never shrinks");
    }

    #[test]
    fn range_primitives_are_exact() {
        let r = AtomicU64::new(pack(0, 3));
        assert_eq!(pop_front(&r), Some(0));
        assert_eq!(pop_front(&r), Some(1));
        assert_eq!(pop_front(&r), Some(2));
        assert_eq!(pop_front(&r), None);

        let victim = AtomicU64::new(pack(10, 20));
        let thief = AtomicU64::new(pack(0, 0));
        assert!(steal_back_half(&victim, &thief));
        assert_eq!(unpack(victim.load(Ordering::SeqCst)), (10, 15));
        assert_eq!(unpack(thief.load(Ordering::SeqCst)), (15, 20));
        let empty = AtomicU64::new(pack(5, 5));
        assert!(!steal_back_half(&empty, &thief));
    }
}
