//! # cso-exec
//!
//! Zero-dependency work-stealing thread-pool executor for the CS pipeline.
//!
//! The paper's system runs its CS-Mappers concurrently across a Hadoop
//! cluster; this crate supplies the single-process counterpart: a
//! persistent pool of worker threads executing **indexed task sets**
//! (`task i of n`) with per-worker range queues and back-half stealing.
//! Results land in an index-addressed slot table, so the caller always
//! receives them **in task order**, no matter which worker ran what — the
//! foundation of the workspace's determinism guarantee (ordered merges
//! over commutative-but-float-sensitive sums, DESIGN.md §8).
//!
//! Entry points:
//!
//! - [`ExecConfig`] — how many workers a parallel section may use.
//!   `ExecConfig { workers: 1 }` (or [`ExecConfig::sequential`]) selects
//!   the inline sequential reference path, bit-identical by construction.
//! - [`par_map`] / [`par_map_n`] / [`try_par_map`] — run a task set on the
//!   shared global pool and return ordered results plus [`ExecStats`].
//! - [`ThreadPool`] — an explicitly owned pool, for tests and embedders
//!   that want controlled shutdown.
//!
//! Every parallel section reports [`ExecStats`] (per-worker task counts,
//! steals, busy time, initial queue depth); [`ExecStats::record`] publishes
//! them as `exec.*` spans and metrics on a [`cso_obs::Recorder`] — see
//! DESIGN.md §7/§8 for the taxonomy.
//!
//! ```
//! use cso_exec::{par_map, ExecConfig};
//!
//! let cfg = ExecConfig::with_workers(4);
//! let items: Vec<u64> = (0..100).collect();
//! let (squares, stats) = par_map(&cfg, &items, |_, &x| x * x);
//! assert_eq!(squares[7], 49);          // results are in task order
//! assert_eq!(stats.tasks(), 100);      // every task ran exactly once
//! ```

#![warn(missing_docs)]

mod pool;
mod stats;

pub use pool::{global_pool, ThreadPool, MAX_WORKERS};
pub use stats::{ExecStats, WorkerStats};

/// How a parallel section is executed.
///
/// `workers` is the number of participants a task set may use, **including
/// the calling thread** — `workers: 1` means the caller runs every task
/// inline, in index order, with no pool involvement at all: that is the
/// sequential reference path every parallel run is tested against.
/// Requests above [`MAX_WORKERS`] are clamped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecConfig {
    /// Maximum number of worker threads (caller included) for a section.
    pub workers: usize,
}

impl ExecConfig {
    /// The sequential reference configuration (`workers: 1`).
    pub fn sequential() -> Self {
        ExecConfig { workers: 1 }
    }

    /// Exactly `workers` participants (clamped to `1..=`[`MAX_WORKERS`]).
    pub fn with_workers(workers: usize) -> Self {
        ExecConfig { workers: workers.clamp(1, MAX_WORKERS) }
    }

    /// One worker per available hardware thread.
    pub fn auto() -> Self {
        let n = std::thread::available_parallelism().map_or(1, |t| t.get());
        ExecConfig::with_workers(n)
    }

    /// True when this configuration runs everything inline on the caller.
    pub fn is_sequential(&self) -> bool {
        self.workers <= 1
    }
}

impl Default for ExecConfig {
    /// Defaults to [`ExecConfig::auto`].
    fn default() -> Self {
        ExecConfig::auto()
    }
}

/// Runs `f(0..n)` across the configured workers and returns the results in
/// index order plus the section's [`ExecStats`].
///
/// With `cfg.workers == 1` (or `n <= 1`, or when called from inside a pool
/// task) this is an inline sequential loop — the reference path. Panics in
/// `f` propagate to the caller after every in-flight task has finished.
pub fn par_map_n<R, F>(cfg: &ExecConfig, n: usize, f: F) -> (Vec<R>, ExecStats)
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    if cfg.is_sequential() || n <= 1 || pool::in_pool_task() {
        return pool::run_sequential(n, &f);
    }
    global_pool(cfg.workers).run(cfg.workers, n, &f)
}

/// As [`par_map_n`] over the elements of a slice: `f(i, &items[i])`.
pub fn par_map<T, R, F>(cfg: &ExecConfig, items: &[T], f: F) -> (Vec<R>, ExecStats)
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_map_n(cfg, items.len(), |i| f(i, &items[i]))
}

/// Runs `f(i, chunk_i)` over the disjoint `chunk`-sized pieces of `data`
/// (last piece may be shorter), returning the per-chunk results in chunk
/// order plus the section's [`ExecStats`].
///
/// This is the mutable counterpart of [`par_map`] for block-decomposed
/// in-place updates (e.g. OMP's correlation refresh over fixed column
/// blocks): every task owns exactly one disjoint sub-slice, so the
/// decomposition — and with it every intermediate float — is independent
/// of the worker count. Each chunk is handed to its task through a
/// dedicated mutex that is locked exactly once, so there is no contention
/// and no `unsafe`.
///
/// Panics when `chunk == 0`.
pub fn par_map_chunks_mut<T, R, F>(
    cfg: &ExecConfig,
    data: &mut [T],
    chunk: usize,
    f: F,
) -> (Vec<R>, ExecStats)
where
    T: Send,
    R: Send,
    F: Fn(usize, &mut [T]) -> R + Sync,
{
    assert!(chunk > 0, "par_map_chunks_mut: chunk size must be positive");
    let slots: Vec<std::sync::Mutex<&mut [T]>> =
        data.chunks_mut(chunk).map(std::sync::Mutex::new).collect();
    par_map(cfg, &slots, |i, slot| {
        let mut guard = slot.lock().expect("chunk slot lock");
        f(i, &mut guard)
    })
}

/// As [`par_map`] for fallible tasks: every task runs, then the results
/// are folded in index order, so the returned error is always the
/// lowest-index failure — exactly what the sequential loop would return.
pub fn try_par_map<T, R, E, F>(
    cfg: &ExecConfig,
    items: &[T],
    f: F,
) -> (Result<Vec<R>, E>, ExecStats)
where
    T: Sync,
    R: Send,
    E: Send,
    F: Fn(usize, &T) -> Result<R, E> + Sync,
{
    let (results, stats) = par_map(cfg, items, f);
    (results.into_iter().collect(), stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn config_clamps_and_classifies() {
        assert_eq!(ExecConfig::with_workers(0).workers, 1);
        assert_eq!(ExecConfig::with_workers(10_000).workers, MAX_WORKERS);
        assert!(ExecConfig::sequential().is_sequential());
        assert!(!ExecConfig::with_workers(2).is_sequential());
        assert!(ExecConfig::default().workers >= 1);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        for workers in [1, 2, 8] {
            let cfg = ExecConfig::with_workers(workers);
            let (out, stats) = par_map_n(&cfg, 0, |i| i);
            assert!(out.is_empty());
            assert_eq!(stats.tasks(), 0);
        }
    }

    #[test]
    fn results_are_in_task_order_for_every_worker_count() {
        let items: Vec<usize> = (0..257).collect();
        let expect: Vec<usize> = items.iter().map(|&x| x * 3 + 1).collect();
        for workers in [1, 2, 3, 8] {
            let cfg = ExecConfig::with_workers(workers);
            let (out, stats) = par_map(&cfg, &items, |_, &x| x * 3 + 1);
            assert_eq!(out, expect, "workers = {workers}");
            assert_eq!(stats.tasks(), items.len() as u64);
            assert_eq!(stats.task_worker.len(), items.len());
        }
    }

    #[test]
    fn every_task_runs_exactly_once_under_stealing() {
        // Uneven task costs force steals on multi-worker runs; the
        // execution count per index must still be exactly one.
        let counts: Vec<AtomicU64> = (0..300).map(|_| AtomicU64::new(0)).collect();
        let cfg = ExecConfig::with_workers(8);
        let (_, stats) = par_map_n(&cfg, counts.len(), |i| {
            // Index-dependent busywork: early tasks are ~100× heavier.
            let spins = if i < 8 { 20_000 } else { 200 };
            let mut acc = 0u64;
            for s in 0..spins {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(s);
            }
            counts[i].fetch_add(1, Ordering::SeqCst);
            std::hint::black_box(acc);
        });
        for (i, c) in counts.iter().enumerate() {
            assert_eq!(c.load(Ordering::SeqCst), 1, "task {i} ran a wrong number of times");
        }
        assert_eq!(stats.tasks(), counts.len() as u64);
        // Worker accounting is conserved regardless of the schedule.
        let per_worker: u64 = stats.per_worker.iter().map(|w| w.tasks).sum();
        assert_eq!(per_worker, counts.len() as u64);
    }

    #[test]
    fn chunked_mutation_covers_every_element_once() {
        let mut data: Vec<u64> = (0..1000).collect();
        let expect: Vec<u64> = data.iter().map(|&x| x * 2 + 1).collect();
        let (sums, stats) =
            par_map_chunks_mut(&ExecConfig::with_workers(4), &mut data, 64, |i, c| {
                for v in c.iter_mut() {
                    *v = *v * 2 + 1;
                }
                (i, c.iter().sum::<u64>())
            });
        assert_eq!(data, expect);
        assert_eq!(stats.tasks(), 1000u64.div_ceil(64));
        // Results arrive in chunk order and the trailing partial chunk
        // (1000 = 15·64 + 40) is visited too.
        assert_eq!(sums.len(), 16);
        assert!(sums.iter().enumerate().all(|(i, &(j, _))| i == j));
        assert_eq!(sums.last().unwrap().1, expect[15 * 64..].iter().sum::<u64>());
    }

    #[test]
    fn chunked_mutation_is_identical_for_every_worker_count() {
        let reference: Vec<f64> = {
            let mut d: Vec<f64> = (0..513).map(|i| i as f64 * 0.25 - 3.0).collect();
            let _ = par_map_chunks_mut(&ExecConfig::sequential(), &mut d, 32, |i, c| {
                for v in c.iter_mut() {
                    *v = v.sin() + i as f64;
                }
            });
            d
        };
        for workers in [2, 8] {
            let mut d: Vec<f64> = (0..513).map(|i| i as f64 * 0.25 - 3.0).collect();
            let _ = par_map_chunks_mut(&ExecConfig::with_workers(workers), &mut d, 32, |i, c| {
                for v in c.iter_mut() {
                    *v = v.sin() + i as f64;
                }
            });
            assert!(
                d.iter().zip(&reference).all(|(a, b)| a.to_bits() == b.to_bits()),
                "workers = {workers}"
            );
        }
    }

    #[test]
    fn chunked_mutation_handles_empty_and_oversized_chunks() {
        let mut empty: Vec<u8> = Vec::new();
        let (out, stats) =
            par_map_chunks_mut(&ExecConfig::with_workers(4), &mut empty, 8, |_, c| c.len());
        assert!(out.is_empty());
        assert_eq!(stats.tasks(), 0);
        let mut small = vec![1u8, 2, 3];
        let (out, _) =
            par_map_chunks_mut(&ExecConfig::with_workers(4), &mut small, 100, |_, c| c.len());
        assert_eq!(out, vec![3]);
    }

    #[test]
    fn try_par_map_returns_lowest_index_error() {
        let items: Vec<usize> = (0..64).collect();
        for workers in [1, 2, 8] {
            let cfg = ExecConfig::with_workers(workers);
            let (res, _) =
                try_par_map(&cfg, &items, |_, &x| if x % 7 == 3 { Err(x) } else { Ok(x) });
            assert_eq!(res.unwrap_err(), 3, "workers = {workers}");
        }
        let ok: (Result<Vec<usize>, usize>, _) =
            try_par_map(&ExecConfig::with_workers(4), &items, |_, &x| Ok(x));
        assert_eq!(ok.0.unwrap(), items);
    }

    #[test]
    fn nested_sections_fall_back_to_inline_execution() {
        // A task that itself calls par_map must not deadlock the pool: the
        // inner section detects it is on a pool thread and runs inline.
        let cfg = ExecConfig::with_workers(4);
        let (out, _) = par_map_n(&cfg, 8, |i| {
            let (inner, inner_stats) = par_map_n(&cfg, 4, move |j| i * 10 + j);
            assert_eq!(inner_stats.workers(), 1);
            inner.iter().sum::<usize>()
        });
        let expect: Vec<usize> = (0..8).map(|i| 4 * (i * 10) + 6).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn panic_in_task_propagates_and_pool_survives() {
        let cfg = ExecConfig::with_workers(4);
        let caught = std::panic::catch_unwind(|| {
            par_map_n(&cfg, 32, |i| {
                if i == 13 {
                    panic!("boom at {i}");
                }
                i
            })
        });
        let payload = caught.expect_err("panic must propagate");
        let msg = payload.downcast_ref::<String>().expect("panic message");
        assert!(msg.contains("boom at 13"), "unexpected payload: {msg}");

        // The pool is still usable after a propagated panic.
        let (out, _) = par_map_n(&cfg, 16, |i| i + 1);
        assert_eq!(out, (1..=16).collect::<Vec<_>>());
    }

    #[test]
    fn oversubscription_beyond_cpu_count_is_correct() {
        // Worker counts above the host's parallelism (always true for 8+
        // on small CI hosts) must not change results.
        let items: Vec<u64> = (0..500).collect();
        let (seq, _) = par_map(&ExecConfig::sequential(), &items, |i, &x| x * 7 + i as u64);
        let (par, stats) = par_map(&ExecConfig::with_workers(8), &items, |i, &x| x * 7 + i as u64);
        assert_eq!(seq, par);
        assert_eq!(stats.workers(), 8);
        assert_eq!(stats.tasks(), 500);
    }
}
