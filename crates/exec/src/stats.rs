//! Per-section execution statistics and their `exec.*` observability
//! mapping (DESIGN.md §7/§8).

use cso_obs::{Recorder, Value};

/// What one worker did during a parallel section.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerStats {
    /// Tasks this worker executed.
    pub tasks: u64,
    /// Successful steals this worker performed.
    pub steals: u64,
    /// Wall time the worker spent inside the section, in nanoseconds.
    /// Wall-side only: the trace's virtual tick clock is never advanced by
    /// the executor (see DESIGN.md §8 on the tick/wall distinction).
    pub busy_ns: u64,
    /// Tasks initially assigned to this worker's queue before stealing.
    pub initial_queue: u64,
}

/// Statistics of one parallel section.
///
/// Worker attribution (`task_worker`, steal counts, busy times) is
/// scheduling-dependent on multi-worker runs; the task *results* are not —
/// they are always returned in task order (DESIGN.md §8).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecStats {
    /// One entry per participating worker (worker 0 is the caller).
    pub per_worker: Vec<WorkerStats>,
    /// Which worker executed each task, indexed by task.
    pub task_worker: Vec<u32>,
}

impl ExecStats {
    /// Stats for an inline sequential run of `tasks` tasks.
    pub(crate) fn sequential(tasks: u64, busy_ns: u64) -> Self {
        ExecStats {
            per_worker: vec![WorkerStats { tasks, steals: 0, busy_ns, initial_queue: tasks }],
            task_worker: vec![0; tasks as usize],
        }
    }

    /// Number of workers that participated (1 for sequential runs).
    pub fn workers(&self) -> usize {
        self.per_worker.len()
    }

    /// Total tasks executed.
    pub fn tasks(&self) -> u64 {
        self.per_worker.iter().map(|w| w.tasks).sum()
    }

    /// Total successful steals across workers.
    pub fn steals(&self) -> u64 {
        self.per_worker.iter().map(|w| w.steals).sum()
    }

    /// The busiest worker's task count — the section's load-balance
    /// bottleneck (`tasks / max_worker_tasks` is the modeled speedup the
    /// scaling sweep reports).
    pub fn max_worker_tasks(&self) -> u64 {
        self.per_worker.iter().map(|w| w.tasks).max().unwrap_or(0)
    }

    /// Publishes the section as `exec.*` spans and metrics.
    ///
    /// Recorded (only when `rec` is enabled **and** the section actually
    /// ran multi-worker, so sequential reference traces are unchanged):
    ///
    /// - one `exec.worker` span per worker with `worker`, `tasks`,
    ///   `steals`, `busy_ns`, `queue_depth` fields, in worker order;
    /// - one `exec.task` event per task with `task`, `worker` fields, in
    ///   task order;
    /// - counters `exec.tasks` / `exec.steals`, gauge `exec.workers`, and
    ///   histograms `exec.queue_depth` / `exec.busy_ns` (per worker).
    pub fn record(&self, rec: &Recorder) {
        if !rec.is_enabled() || self.workers() <= 1 {
            return;
        }
        rec.counter_add("exec.tasks", self.tasks());
        rec.counter_add("exec.steals", self.steals());
        rec.gauge_set("exec.workers", self.workers() as f64);
        for (worker, w) in self.per_worker.iter().enumerate() {
            let _span = rec.span_with(
                "exec.worker",
                &[
                    ("worker", Value::U64(worker as u64)),
                    ("tasks", Value::U64(w.tasks)),
                    ("steals", Value::U64(w.steals)),
                    ("busy_ns", Value::U64(w.busy_ns)),
                    ("queue_depth", Value::U64(w.initial_queue)),
                ],
            );
            rec.histogram_record("exec.queue_depth", w.initial_queue);
            rec.histogram_record("exec.busy_ns", w.busy_ns);
        }
        for (task, &worker) in self.task_worker.iter().enumerate() {
            rec.event(
                "exec.task",
                &[("task", Value::U64(task as u64)), ("worker", Value::U64(u64::from(worker)))],
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cso_obs::EntryKind;

    fn two_worker_stats() -> ExecStats {
        ExecStats {
            per_worker: vec![
                WorkerStats { tasks: 3, steals: 0, busy_ns: 100, initial_queue: 2 },
                WorkerStats { tasks: 1, steals: 1, busy_ns: 90, initial_queue: 2 },
            ],
            task_worker: vec![0, 0, 1, 0],
        }
    }

    #[test]
    fn aggregates_sum_per_worker() {
        let s = two_worker_stats();
        assert_eq!(s.workers(), 2);
        assert_eq!(s.tasks(), 4);
        assert_eq!(s.steals(), 1);
        assert_eq!(s.max_worker_tasks(), 3);
    }

    #[test]
    fn record_emits_spans_events_and_metrics() {
        let rec = Recorder::new();
        let s = two_worker_stats();
        s.record(&rec);
        let trace = rec.trace_snapshot();
        let worker_spans: Vec<_> = trace
            .iter()
            .filter(|e| e.kind == EntryKind::SpanStart && e.name == "exec.worker")
            .collect();
        assert_eq!(worker_spans.len(), 2);
        assert_eq!(worker_spans[0].field_u64("worker"), Some(0));
        assert_eq!(worker_spans[0].field_u64("tasks"), Some(3));
        assert_eq!(worker_spans[1].field_u64("steals"), Some(1));
        let task_events = rec.events_named("exec.task");
        assert_eq!(task_events.len(), 4);
        assert_eq!(task_events[2].field_u64("worker"), Some(1));
        let snap = rec.metrics_snapshot();
        assert_eq!(snap.counter("exec.tasks"), Some(4));
        assert_eq!(snap.counter("exec.steals"), Some(1));
        assert_eq!(snap.gauge("exec.workers"), Some(2.0));
    }

    #[test]
    fn sequential_sections_record_nothing() {
        let rec = Recorder::new();
        ExecStats::sequential(10, 5).record(&rec);
        assert!(rec.trace_snapshot().is_empty());
        assert!(rec.metrics_snapshot().is_empty());
        // And a disabled recorder is a no-op for parallel stats too.
        two_worker_stats().record(&Recorder::disabled());
    }
}
