//! End-to-end integration: workload generation → distributed protocols →
//! quality metrics, across the crate boundaries a user would actually
//! cross. These tests pin the paper's headline claims at small scale.

use cs_outlier::core::{outlier_errors, BompConfig, KeyValue};
use cs_outlier::distributed::{AllProtocol, Cluster, CsProtocol, KDeltaProtocol, OutlierProtocol};
use cs_outlier::workloads::{ClickLogConfig, ClickLogData};

fn workload(seed: u64) -> ClickLogData {
    // ~1040 keys, ~30 outliers, 8 DCs with camouflage.
    ClickLogData::generate(&ClickLogConfig::core_search().scaled_down(10), seed).unwrap()
}

fn cluster_of(data: &ClickLogData) -> Cluster {
    Cluster::new(data.slices.clone()).unwrap()
}

#[test]
fn cs_protocol_is_accurate_at_a_few_percent_of_all() {
    let data = workload(101);
    let cluster = cluster_of(&data);
    let k = 10;
    let truth: Vec<KeyValue> = data.true_k_outliers(k);

    // M chosen so cost ≈ 19% of ALL on this scaled-down instance (the full
    // 10.4K-key workload reaches the paper's 1–5% regime; see EXPERIMENTS.md).
    let m = 200;
    let cs = CsProtocol::new(m, 7)
        .with_recovery(BompConfig::with_max_iterations(80))
        .run(&cluster, k)
        .unwrap();
    let all = AllProtocol::vectorized().run(&cluster, k).unwrap();

    let (ek, ev) = outlier_errors(&truth, &cs.estimate).unwrap();
    assert_eq!(ek, 0.0, "CS keys must be exact, estimate = {:?}", cs.estimate);
    assert!(ev < 0.01, "CS values must be near-exact, ev = {ev}");
    let ratio = cs.cost.normalized_to(&all.cost);
    assert!(ratio < 0.25, "cost ratio = {ratio}");
    assert!((cs.mode - data.mode).abs() < 1.0);
}

#[test]
fn cs_beats_kdelta_at_equal_budget_under_skew() {
    // The Figures 7/8 comparison: equal communication, CS wins on key and
    // value error when slices are skewed.
    let data = workload(55);
    let cluster = cluster_of(&data);
    let k = 10;
    let truth: Vec<KeyValue> = data.true_k_outliers(k);

    let m = 200;
    let cs = CsProtocol::new(m, 3)
        .with_recovery(BompConfig::with_max_iterations(80))
        .run(&cluster, k)
        .unwrap();
    // Match K+δ's budget to CS's bit cost: L·(k+δ)·96 ≈ L·M·64.
    let delta = (m * 64 / 96).saturating_sub(k);
    let kd = KDeltaProtocol::new(delta, 3).run(&cluster, k).unwrap();
    assert!(
        (kd.cost.bits as f64) < cs.cost.bits as f64 * 1.1,
        "budgets must be comparable: kd {} vs cs {}",
        kd.cost.bits,
        cs.cost.bits
    );

    let (cs_ek, cs_ev) = outlier_errors(&truth, &cs.estimate).unwrap();
    let (kd_ek, kd_ev) = outlier_errors(&truth, &kd.estimate).unwrap();
    assert!(cs_ek < kd_ek, "EK: cs {cs_ek} vs k+delta {kd_ek}");
    assert!(cs_ev < kd_ev, "EV: cs {cs_ev} vs k+delta {kd_ev}");
}

#[test]
fn all_baselines_agree_on_ground_truth() {
    let data = workload(9);
    let cluster = cluster_of(&data);
    let k = 8;
    let v = AllProtocol::vectorized().run(&cluster, k).unwrap();
    let kv = AllProtocol::kv_pairs().run(&cluster, k).unwrap();
    assert_eq!(v.estimate, kv.estimate, "encodings must not change the answer");
    assert_eq!(v.mode, kv.mode);
    // Dense random-proportion slices: vectorized is the cheaper encoding.
    assert!(v.cost.bits < kv.cost.bits);
}

#[test]
fn sketch_cost_does_not_depend_on_data() {
    let a = workload(1);
    let b = workload(2);
    let k = 5;
    let proto = CsProtocol::new(100, 9);
    let ca = proto.run(&cluster_of(&a), k).unwrap().cost;
    let cb = proto.run(&cluster_of(&b), k).unwrap().cost;
    assert_eq!(ca, cb);
}

#[test]
fn errors_shrink_as_m_grows() {
    // The monotone trend behind Figures 5–8 (averaged over seeds to avoid
    // single-run noise).
    let k = 10;
    let mut avg_ev = Vec::new();
    for &m in &[40usize, 100, 240] {
        let mut total = 0.0;
        let mut runs = 0;
        for seed in 0..4u64 {
            let data = workload(300 + seed);
            let cluster = cluster_of(&data);
            let truth = data.true_k_outliers(k);
            let run = CsProtocol::new(m, seed)
                .with_recovery(BompConfig::with_max_iterations(m.min(80)))
                .run(&cluster, k)
                .unwrap();
            let (_, ev) = outlier_errors(&truth, &run.estimate).unwrap();
            total += ev;
            runs += 1;
        }
        avg_ev.push(total / runs as f64);
    }
    assert!(avg_ev[2] < avg_ev[0], "EV should fall from M=40 to M=240: {avg_ev:?}");
    assert!(avg_ev[2] < 0.01, "large M should be near-exact: {avg_ev:?}");
}
