//! Integration tests for the Section 7.1 baselines (TA, TPUT) and the
//! extension features (quantized wire execution, extended aggregates)
//! against the same workloads the CS protocol runs on.

use cs_outlier::core::{BompConfig, KeyValue};
use cs_outlier::distributed::{
    Cluster, CsProtocol, OutlierProtocol, SketchEncoding, TaProtocol, TputProtocol,
};
use cs_outlier::workloads::{split, ClickLogConfig, ClickLogData, SliceStrategy};

/// Non-negative workload (shifted click-log aggregate) that TA/TPUT accept.
fn nonneg_cluster() -> (Cluster, Vec<f64>) {
    let data = ClickLogData::generate(&ClickLogConfig::core_search().scaled_down(20), 4).unwrap();
    // Shift so everything is non-negative (top-k semantics, as in the
    // paper's Hadoop comparison which moves the mode to 0).
    let min = data.global.iter().cloned().fold(f64::INFINITY, f64::min);
    let shifted: Vec<f64> = data.global.iter().map(|v| v - min).collect();
    let slices = split(&shifted, 4, SliceStrategy::RandomProportions, 9).unwrap();
    // Random proportions of non-negative data stay non-negative (up to
    // float dust); clamp the dust so TA/TPUT accept.
    let slices: Vec<Vec<f64>> =
        slices.into_iter().map(|s| s.into_iter().map(|v| v.max(0.0)).collect()).collect();
    (Cluster::new(slices).unwrap(), shifted)
}

#[test]
fn ta_tput_and_exact_topk_agree_on_click_data() {
    let (cluster, x) = nonneg_cluster();
    let k = 5;
    let mut expect: Vec<usize> = (0..x.len()).collect();
    expect.sort_by(|&a, &b| x[b].partial_cmp(&x[a]).unwrap().then(a.cmp(&b)));
    expect.truncate(k);

    let ta = TaProtocol.run_topk(&cluster, k).unwrap();
    let tput = TputProtocol.run_topk(&cluster, k).unwrap();
    let ta_keys: Vec<usize> = ta.topk.iter().map(|o| o.index).collect();
    let tput_keys: Vec<usize> = tput.topk.iter().map(|o| o.index).collect();
    assert_eq!(ta_keys, expect);
    assert_eq!(tput_keys, expect);
    // The exact protocols are multi-round; CS is single-round.
    assert!(ta.cost.rounds > 1);
    assert_eq!(tput.cost.rounds, 3);
}

#[test]
fn exact_baselines_refuse_outlier_style_data() {
    // The k-outlier problem lives over R^N; TA/TPUT's monotonicity
    // assumptions break and the implementations refuse (paper §7.1).
    let data = ClickLogData::generate(&ClickLogConfig::ads().scaled_down(30), 8).unwrap();
    let cluster = Cluster::new(data.slices.clone()).unwrap();
    let has_negative = data.slices.iter().flatten().any(|&v| v < 0.0);
    assert!(has_negative, "camouflaged click slices carry negative values");
    assert!(TaProtocol.run_topk(&cluster, 5).is_err());
    assert!(TputProtocol.run_topk(&cluster, 5).is_err());
    // The CS protocol handles the same cluster fine.
    let cs = CsProtocol::new(150, 3)
        .with_recovery(BompConfig::with_max_iterations(60))
        .run(&cluster, 5)
        .unwrap();
    assert_eq!(cs.estimate.len(), 5);
}

#[test]
fn quantized_wire_run_matches_lossless_on_real_workload() {
    let data = ClickLogData::generate(&ClickLogConfig::answer().scaled_down(10), 17).unwrap();
    let cluster = Cluster::new(data.slices.clone()).unwrap();
    // k must stay above the workload's deviation floor: the scaled-down
    // preset only has ~5 dominant outliers before ties set in.
    let k = 5;
    // M ≈ 5–6·s for exact recovery (Figure 4a scaling at s = 61).
    let proto = CsProtocol::new(350, 31).with_recovery(BompConfig::with_max_iterations(120));

    let lossless = proto.run_over_wire(&cluster, k, SketchEncoding::F64).unwrap();
    let fixed16 = proto.run_over_wire(&cluster, k, SketchEncoding::Fixed16).unwrap();

    let lossless_keys: Vec<usize> = lossless.estimate.iter().map(|o| o.index).collect();
    let fixed_keys: Vec<usize> = fixed16.estimate.iter().map(|o| o.index).collect();
    assert_eq!(lossless_keys, fixed_keys, "16-bit sketches keep the outlier set");
    assert!(fixed16.cost.bits < lossless.cost.bits / 3, "≈4× payload reduction");

    // Ground truth check on the quantized run.
    let truth: Vec<KeyValue> = data.true_k_outliers(k);
    let ek = cs_outlier::core::error_on_key(&truth, &fixed16.estimate).unwrap();
    assert_eq!(ek, 0.0);
}

#[test]
fn recovered_aggregates_answer_section8_queries() {
    use cs_outlier::core::aggregates::{recovered_mean, recovered_median, recovered_quantile};
    let data = ClickLogData::generate(&ClickLogConfig::core_search().scaled_down(20), 23).unwrap();
    let spec = cs_outlier::core::MeasurementSpec::new(260, data.n(), 5).unwrap();
    let y = spec.measure_dense(&data.global).unwrap();
    let r = cs_outlier::core::bomp(&spec, &y, &BompConfig::with_max_iterations(120)).unwrap();

    let exact_mean = data.global.iter().sum::<f64>() / data.n() as f64;
    assert!(
        (recovered_mean(&r) - exact_mean).abs() < exact_mean.abs() * 0.01 + 1.0,
        "mean {} vs {}",
        recovered_mean(&r),
        exact_mean
    );
    // Median of majority-dominated data is the mode.
    assert!((recovered_median(&r).unwrap() - data.mode).abs() < 1e-6);
    // Extreme quantiles reach into the recovered outliers.
    let q999 = recovered_quantile(&r, 0.999).unwrap();
    assert!(q999 > data.mode, "q999 = {q999}");
}
