//! Consistency between the three execution paths: the direct protocol, the
//! MapReduce jobs, and the query layer must all tell the same story on the
//! same data.

use cs_outlier::core::BompConfig;
use cs_outlier::distributed::{Cluster, CsProtocol, OutlierProtocol};
use cs_outlier::mapreduce::{run_cs_job, run_topk_job, Record};
use cs_outlier::query::{run, ProtocolChoice, QueryOptions};
use cs_outlier::workloads::{ClickLogConfig, ClickLogData};

fn workload() -> ClickLogData {
    // Instance seed picked so all six planted outliers sit clearly above
    // the noise floor under the vendored deterministic RNG.
    ClickLogData::generate(&ClickLogConfig::ads().scaled_down(20), 2023).unwrap()
}

/// Raw events for each data center, resolved to key indices.
fn event_splits(data: &ClickLogData) -> Vec<Vec<Record>> {
    let index_of: std::collections::HashMap<_, _> =
        data.keys.iter().enumerate().map(|(i, k)| (*k, i)).collect();
    (0..data.l())
        .map(|dc| data.events(dc, 2, 99).into_iter().map(|e| (index_of[&e.key], e.score)).collect())
        .collect()
}

#[test]
fn mapreduce_cs_job_matches_direct_protocol() {
    let data = workload();
    let splits = event_splits(&data);
    let k = 8;
    let m = 260;
    let recovery = BompConfig::with_max_iterations(120);

    let job = run_cs_job(&splits, data.n(), m, 5, k, &recovery).unwrap();

    let cluster = Cluster::new(data.slices.clone()).unwrap();
    let direct = CsProtocol::new(m, 5).with_recovery(recovery).run(&cluster, k).unwrap();

    let job_keys: Vec<usize> = job.outliers.iter().map(|o| o.index).collect();
    let direct_keys: Vec<usize> = direct.estimate.iter().map(|o| o.index).collect();
    assert_eq!(job_keys, direct_keys, "job and protocol must agree");
    assert!((job.mode - direct.mode).abs() < 1e-6);
}

#[test]
fn topk_job_reproduces_exact_aggregate() {
    let data = workload();
    let splits = event_splits(&data);
    let out = run_topk_job(&splits, data.n(), 5).unwrap();
    // Exact aggregate from the workload's ground truth.
    let mut expect: Vec<(usize, f64)> = data.global.iter().copied().enumerate().collect();
    expect.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
    for (got, want) in out.topk.iter().zip(expect.iter().take(5)) {
        assert_eq!(got.index, want.0);
        assert!((got.value - want.1).abs() < 1e-6);
    }
}

#[test]
fn cs_job_recovers_planted_outliers_from_raw_events() {
    let data = workload();
    let splits = event_splits(&data);
    let k = 6;
    let job =
        run_cs_job(&splits, data.n(), 260, 41, k, &BompConfig::with_max_iterations(130)).unwrap();
    let truth = data.true_k_outliers(k);
    let truth_keys: std::collections::HashSet<usize> = truth.iter().map(|o| o.index).collect();
    let hit = job.outliers.iter().filter(|o| truth_keys.contains(&o.index)).count();
    assert!(hit >= k - 1, "at least {k}−1 of the true outliers, got {hit}");
    assert!((job.mode - data.mode).abs() < data.mode.abs() * 0.01 + 1.0);
}

#[test]
fn query_layer_agrees_with_protocol_on_full_grouping() {
    let data = workload();
    let sql = "SELECT OUTLIER 6 SUM(score) FROM clicks GROUP BY day, market, vertical, url";
    let res =
        run(sql, &data, &QueryOptions { protocol: ProtocolChoice::Cs { m: Some(260) }, seed: 5 })
            .unwrap();
    let exact = run(sql, &data, &QueryOptions { protocol: ProtocolChoice::All, seed: 5 }).unwrap();
    let res_labels: Vec<&str> = res.rows.iter().map(|r| r.label.as_str()).collect();
    let exact_labels: Vec<&str> = exact.rows.iter().map(|r| r.label.as_str()).collect();
    assert_eq!(res_labels, exact_labels);
}
