//! The paper's Figure 1: (a) local slices hide global outliers; (b) the
//! k-outlier set differs from both top-k and absolute-top-k.

use cs_outlier::core::outlier::{absolute_top_k, exact_majority_mode, k_outliers, top_k};
use cs_outlier::core::{bomp, BompConfig, MeasurementSpec};
use cs_outlier::workloads::{aggregate, split, SliceStrategy};

/// A 15-key example shaped like the paper's Figure 1: mode 1800, one key
/// (k5, index 4) that only becomes an outlier after aggregation.
fn figure1_global() -> Vec<f64> {
    let mut x = vec![1800.0; 15];
    x[4] = 5400.0; //  k5: the hidden global outlier
    x[9] = 150.0; //   k10: a low outlier
    x[12] = 3000.0; // k13: a moderate outlier
    x
}

#[test]
fn local_slices_look_normal_but_aggregate_reveals_k5() {
    // Hand-crafted three-data-center slices, shaped like the paper's
    // Figure 1: per-node values scatter with no mode, k5 (index 4) holds an
    // ordinary-looking 1800 everywhere — but its column is the only one
    // summing to 5400 ("the key k5 in the remote data centers appears
    // 'normal'. However, after aggregation, it is an obvious outlier").
    #[rustfmt::skip]
    let slices: Vec<Vec<f64>> = vec![
        vec![600.0, 2600.0, -400.0, -400.0, 1800.0, 900.0, 0.0, 1700.0, 300.0, 50.0, 2500.0, -800.0, 1000.0, 500.0, -900.0],
        vec![600.0, -400.0, 2600.0, -400.0, 1800.0, 300.0, 1000.0, 100.0, 1500.0, 50.0, -900.0, 2400.0, 1000.0, 500.0, 400.0],
        vec![600.0, -400.0, -400.0, 2600.0, 1800.0, 600.0, 800.0, 0.0, 0.0, 50.0, 200.0, 200.0, 1000.0, 800.0, 2300.0],
    ];
    // In every slice, rank keys by deviation from the slice median; k5 must
    // not be the locally most suspicious key.
    for slice in &slices {
        let median = cs_outlier::linalg::stats::median(slice).unwrap();
        let local_top = k_outliers(slice, median, 1);
        assert_ne!(local_top[0].index, 4, "k5 must not dominate locally: {slice:?}");
    }
    // Globally it is the clear #1 outlier against the mode 1800.
    let global = aggregate(&slices).unwrap();
    let m = exact_majority_mode(&global).unwrap();
    assert_eq!(m, 1800.0);
    assert_eq!(k_outliers(&global, m, 1)[0].index, 4);
}

#[test]
fn outlier_k_differs_from_both_top_variants() {
    let x = figure1_global();
    let k = 2;
    let mode = exact_majority_mode(&x).unwrap();
    let out: Vec<usize> = k_outliers(&x, mode, k).iter().map(|o| o.index).collect();
    let top: Vec<usize> = top_k(&x, k).iter().map(|o| o.index).collect();
    let abs: Vec<usize> = absolute_top_k(&x, k).iter().map(|o| o.index).collect();
    // Outliers: k5 (|3600|) then k10 (|1650|).
    assert_eq!(out, vec![4, 9]);
    // Top-2 by value: k5 then k13 — never k10.
    assert_eq!(top, vec![4, 12]);
    // Absolute top-2: same as top here (all positive) — still not k10.
    assert_eq!(abs, vec![4, 12]);
    assert_ne!(out, top);
}

#[test]
fn bomp_recovers_the_figure1_outliers_from_sketches() {
    let x = figure1_global();
    let slices = split(&x, 3, SliceStrategy::RandomProportions, 5).unwrap();
    // M = 12 of N = 15 is deliberately marginal; seed picked to give a
    // well-conditioned Φ under the vendored deterministic RNG.
    let spec = MeasurementSpec::new(12, 15, 34).unwrap();
    let mut y = spec.measure_dense(&slices[0]).unwrap();
    for s in &slices[1..] {
        y.add_assign(&spec.measure_dense(s).unwrap()).unwrap();
    }
    let r = bomp(&spec, &y, &BompConfig::default()).unwrap();
    assert!((r.mode - 1800.0).abs() < 1e-6);
    let found: Vec<usize> = r.top_k(3).iter().map(|o| o.index).collect();
    assert_eq!(found, vec![4, 9, 12]);
}
