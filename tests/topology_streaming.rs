//! Integration: hierarchical aggregation feeding matrix-free recovery —
//! the wide-area deployment shape (regional hubs, memory-constrained
//! aggregator) assembled from the extension modules.

use cs_outlier::core::{streaming_bomp, BompConfig, MeasurementSpec};
use cs_outlier::distributed::{AggregationTree, TreeNode};
use cs_outlier::workloads::{split, SliceStrategy};

#[test]
fn three_level_tree_plus_streaming_recovery() {
    // 12 data centers in 3 regions of 2 sub-hubs each.
    let n = 1500;
    let mut x = vec![450.0; n];
    x[100] = 30_000.0;
    x[700] = -12_000.0;
    x[1400] = 18_000.0;
    let slices =
        split(&x, 12, SliceStrategy::Camouflaged { offset: 2500.0, fraction: 0.3 }, 21).unwrap();

    let spec = MeasurementSpec::new(90, n, 5150).unwrap();
    let sketches: Vec<_> = slices.iter().map(|s| spec.measure_dense(s).unwrap()).collect();

    // region r holds sub-hubs over leaves {4r..4r+1} and {4r+2..4r+3}.
    let regions: Vec<TreeNode> = (0..3)
        .map(|r| {
            TreeNode::hub(vec![
                TreeNode::hub(vec![TreeNode::leaf(4 * r), TreeNode::leaf(4 * r + 1)]),
                TreeNode::hub(vec![TreeNode::leaf(4 * r + 2), TreeNode::leaf(4 * r + 3)]),
            ])
        })
        .collect();
    let tree = AggregationTree::new(TreeNode::hub(regions), 12).unwrap();
    assert_eq!(tree.links(), 12 + 6 + 3);

    let (y, cost) = tree.aggregate(&spec, &sketches).unwrap();
    assert_eq!(cost.rounds, 3, "three levels of forwarding");
    assert_eq!(cost.tuples, 21 * 90);

    // Matrix-free recovery on the aggregator.
    let r = streaming_bomp(&spec, &y, &BompConfig::default()).unwrap();
    assert!((r.mode - 450.0).abs() < 1e-6, "mode = {}", r.mode);
    let top: Vec<usize> = r.top_k(3).iter().map(|o| o.index).collect();
    assert_eq!(top, vec![100, 1400, 700], "ordered by |deviation|");
    for o in r.top_k(3) {
        assert!((o.value - x[o.index]).abs() < 1e-4);
    }
}

#[test]
fn tree_shape_does_not_change_recovery() {
    let n = 600;
    let mut x = vec![-50.0; n];
    x[9] = 7_000.0;
    let slices = split(&x, 8, SliceStrategy::RandomProportions, 3).unwrap();
    let spec = MeasurementSpec::new(50, n, 77).unwrap();
    let sketches: Vec<_> = slices.iter().map(|s| spec.measure_dense(s).unwrap()).collect();

    let shapes = [
        AggregationTree::star(8).unwrap(),
        AggregationTree::two_level(8, 2).unwrap(),
        AggregationTree::two_level(8, 3).unwrap(),
    ];
    let mut modes = Vec::new();
    for tree in &shapes {
        let (y, _) = tree.aggregate(&spec, &sketches).unwrap();
        let r = streaming_bomp(&spec, &y, &BompConfig::default()).unwrap();
        assert_eq!(r.top_k(1)[0].index, 9);
        modes.push(r.mode);
    }
    for m in &modes[1..] {
        assert!((m - modes[0]).abs() < 1e-9, "topology must not matter");
    }
}
