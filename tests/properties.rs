//! Property-based tests of the system's core invariants, across crates.

use cs_outlier::core::{
    bomp, error_on_key, error_on_value, BompConfig, KeyValue, MeasurementSpec, SparseVector,
};
use cs_outlier::linalg::{IncrementalQr, Vector};
use cs_outlier::workloads::{aggregate, split, SliceStrategy};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Measurement is linear: sketching slices and summing equals sketching
    /// the aggregate (equation (1), the foundation of the whole protocol).
    #[test]
    fn sketch_of_sum_is_sum_of_sketches(
        values in prop::collection::vec(-1e6f64..1e6, 8..64),
        l in 1usize..6,
        seed in 0u64..1000,
    ) {
        let n = values.len();
        let strategy = SliceStrategy::RandomProportions;
        let slices = split(&values, l, strategy, seed).unwrap();
        let spec = MeasurementSpec::new(6, n, seed ^ 0xF00D).unwrap();
        let mut summed = Vector::zeros(6);
        for s in &slices {
            summed.add_assign(&spec.measure_dense(s).unwrap()).unwrap();
        }
        let direct = spec.measure_dense(&aggregate(&slices).unwrap()).unwrap();
        let scale = direct.norm2().max(1.0);
        prop_assert!(summed.sub(&direct).unwrap().norm2() / scale < 1e-9);
    }

    /// Slices produced by any strategy sum back to the original vector.
    #[test]
    fn splits_always_sum_back(
        values in prop::collection::vec(-1e5f64..1e5, 4..80),
        l in 1usize..8,
        seed in 0u64..500,
        strat in 0u8..3,
    ) {
        let strategy = match strat {
            0 => SliceStrategy::Uniform,
            1 => SliceStrategy::RandomProportions,
            _ => SliceStrategy::Camouflaged { offset: 123.0, fraction: 0.4 },
        };
        let slices = split(&values, l, strategy, seed).unwrap();
        let back = aggregate(&slices).unwrap();
        for (a, b) in back.iter().zip(&values) {
            prop_assert!((a - b).abs() <= 1e-7 * (1.0 + b.abs()));
        }
    }

    /// BOMP exactly recovers biased sparse vectors whenever the sketch is
    /// generously sized (M ≥ 8(s+1)).
    #[test]
    fn bomp_exact_recovery_with_generous_m(
        mode in -1e4f64..1e4,
        outliers in prop::collection::btree_map(0usize..50, 2e4f64..9e4, 1..5),
        seed in 0u64..200,
    ) {
        let n = 50;
        let s = outliers.len();
        let m = 8 * (s + 1) + 8;
        let spec = MeasurementSpec::new(m, n, seed).unwrap();
        let mut x = vec![mode; n];
        for (&i, &v) in &outliers {
            x[i] = v;
        }
        let y = spec.measure_dense(&x).unwrap();
        let r = bomp(&spec, &y, &BompConfig::default()).unwrap();
        prop_assert!((r.mode - mode).abs() < 1e-3 * (1.0 + mode.abs()),
            "mode {} vs {}", r.mode, mode);
        let rec = r.recovered_dense();
        for (i, (&xi, &ri)) in x.iter().zip(rec.iter()).enumerate() {
            prop_assert!((xi - ri).abs() < 1e-3 * (1.0 + xi.abs()), "key {i}: {xi} vs {ri}");
        }
    }

    /// EK and EV are 0 exactly on perfect estimates and EK ∈ [0, 1] always.
    #[test]
    fn metric_bounds(
        truth_vals in prop::collection::vec(1.0f64..1e5, 1..20),
        est_vals in prop::collection::vec(-1e5f64..1e5, 0..25),
    ) {
        let truth: Vec<KeyValue> = truth_vals
            .iter()
            .enumerate()
            .map(|(index, &value)| KeyValue { index, value })
            .collect();
        let estimate: Vec<KeyValue> = est_vals
            .iter()
            .enumerate()
            .map(|(i, &value)| KeyValue { index: i + 1000, value })
            .collect();
        let ek = error_on_key(&truth, &estimate).unwrap();
        prop_assert!((0.0..=1.0).contains(&ek));
        prop_assert_eq!(error_on_key(&truth, &truth).unwrap(), 0.0);
        prop_assert_eq!(error_on_value(&truth, &truth).unwrap(), 0.0);
        let ev = error_on_value(&truth, &estimate).unwrap();
        prop_assert!(ev >= 0.0);
    }

    /// Sparse vectors round-trip through dense form.
    #[test]
    fn sparse_dense_round_trip(
        entries in prop::collection::btree_map(0usize..100, -1e6f64..1e6, 0..20),
    ) {
        let sv = SparseVector::new(100, entries.clone().into_iter().collect()).unwrap();
        let dense = sv.to_dense();
        let back = SparseVector::from_dense(dense.as_slice(), 0.0);
        prop_assert_eq!(sv.entries().len(), back.entries().len());
        for (a, b) in sv.entries().iter().zip(back.entries()) {
            prop_assert_eq!(a, b);
        }
    }

    /// Incremental QR: Q stays orthonormal and least-squares residuals are
    /// orthogonal to the span, for arbitrary well-conditioned inputs.
    #[test]
    fn qr_invariants(
        cols in prop::collection::vec(
            prop::collection::vec(-100.0f64..100.0, 12), 1..8),
        y in prop::collection::vec(-100.0f64..100.0, 12),
    ) {
        let mut qr = IncrementalQr::new(12);
        for c in &cols {
            // Rank-deficient pushes may legitimately fail; skip those.
            let _ = qr.push_column(c);
        }
        prop_assume!(qr.ncols() > 0);
        prop_assert!(qr.orthogonality_defect() < 1e-9);
        let resid = qr.residual(&y).unwrap();
        let coeffs = qr.qt_mul(resid.as_slice()).unwrap();
        prop_assert!(coeffs.norm_inf() < 1e-8);
    }
}
