//! Hermetic stand-in for the `criterion` crate.
//!
//! This workspace must build with no network access, so the external
//! `criterion` dev-dependency is replaced by this minimal wall-clock
//! harness implementing the surface the workspace's benches use:
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`] (with
//! `sample_size`, `bench_function`, `bench_with_input`, `finish`),
//! [`BenchmarkId`], [`black_box`], [`criterion_group!`], and
//! [`criterion_main!`].
//!
//! Statistics are deliberately simple — warm-up, then `sample_size` timed
//! samples with auto-scaled iteration counts, reporting min/median/mean —
//! but the measured closures run for real, so relative comparisons between
//! benchmarks remain meaningful.

use std::fmt;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer value passthrough.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter` id.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId { label: format!("{name}/{parameter}") }
    }

    /// Id that is just the parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { label: format!("{parameter}") }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// Times one measured closure.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Runs `routine` repeatedly and records per-iteration timings.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and per-sample iteration scaling: aim for ~5 ms samples,
        // clamped so pathological routines still terminate promptly.
        let warm_start = Instant::now();
        black_box(routine());
        let once = warm_start.elapsed().max(Duration::from_nanos(1));
        let iters_per_sample = ((Duration::from_millis(5).as_nanos() / once.as_nanos().max(1))
            as u64)
            .clamp(1, 100_000);

        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / iters_per_sample as u32);
        }
    }
}

fn report(label: &str, samples: &mut Vec<Duration>) {
    if samples.is_empty() {
        println!("{label:<40} (no samples)");
        return;
    }
    samples.sort_unstable();
    let min = samples[0];
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    println!("{label:<40} min {min:>12.3?}  median {median:>12.3?}  mean {mean:>12.3?}");
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Benchmarks `routine` under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        mut routine: F,
    ) -> &mut Self {
        let mut b = Bencher { samples: Vec::new(), sample_size: self.sample_size };
        routine(&mut b);
        report(&format!("{}/{id}", self.name), &mut b.samples);
        self
    }

    /// Benchmarks `routine` with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self {
        let mut b = Bencher { samples: Vec::new(), sample_size: self.sample_size };
        routine(&mut b, input);
        report(&format!("{}/{id}", self.name), &mut b.samples);
        self
    }

    /// Ends the group (upstream flushes reports here; this shim reports
    /// eagerly, so it is a no-op kept for API compatibility).
    pub fn finish(self) {}
}

/// Benchmark driver.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { default_sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the default number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.default_sample_size = n;
        self
    }

    /// Benchmarks a standalone function.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: &str,
        mut routine: F,
    ) -> &mut Self {
        let mut b = Bencher { samples: Vec::new(), sample_size: self.default_sample_size };
        routine(&mut b);
        report(name, &mut b.samples);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size;
        BenchmarkGroup { name: name.into(), sample_size, _criterion: self }
    }
}

/// Declares a group of benchmark functions. Both upstream forms are
/// accepted; the long form's `config` expression builds the driver.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut c = Criterion::default();
        let mut ran = 0u32;
        c.bench_function("trivial", |b| {
            b.iter(|| {
                ran += 1;
                black_box(2 + 2)
            })
        });
        assert!(ran > 0);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        g.bench_with_input(BenchmarkId::from_parameter(7), &7usize, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        g.bench_function("plain", |b| b.iter(|| black_box(1)));
        g.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("algo", 42).to_string(), "algo/42");
        assert_eq!(BenchmarkId::from_parameter(9).to_string(), "9");
    }
}
