//! Hermetic stand-in for the `proptest` crate.
//!
//! This workspace must build with no network access, so the external
//! `proptest` dev-dependency is replaced by this vendored harness that
//! implements the subset the workspace's property tests use:
//!
//! - the [`proptest!`] macro (with optional `#![proptest_config(...)]`),
//!   [`prop_assert!`], [`prop_assert_eq!`], [`prop_assume!`], and
//!   [`prop_oneof!`];
//! - [`strategy::Strategy`] with `prop_map`, `prop_flat_map`, and `boxed`;
//! - strategies for numeric ranges (`0u64..300`, `-1e4f64..1e4`, …),
//!   tuples, [`strategy::Just`], [`collection::vec`],
//!   [`collection::btree_map`], [`option::of`], and string patterns
//!   (`"\\PC{0,80}"`-style, interpreted loosely as "printable garbage");
//! - [`test_runner::Config`] (`ProptestConfig::with_cases`) and
//!   [`test_runner::TestCaseError`].
//!
//! **No shrinking**: on failure the harness reports the case number; cases
//! are seeded deterministically from the test's module path and case index,
//! so a failure reproduces exactly by re-running the test.

pub mod test_runner {
    //! Runner configuration, case errors, and the per-case RNG.

    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    /// Runner configuration (upstream's `Config`, aliased `ProptestConfig`
    /// in the prelude).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of accepted cases each test runs.
        pub cases: u32,
    }

    impl Config {
        /// Config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum TestCaseError {
        /// The case failed an assertion.
        Fail(String),
        /// The case was rejected by `prop_assume!` (does not count as run).
        Reject(String),
    }

    impl TestCaseError {
        /// A failing case with the given reason.
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError::Fail(reason.into())
        }

        /// A rejected (filtered-out) case.
        pub fn reject(reason: impl Into<String>) -> Self {
            TestCaseError::Reject(reason.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(r) => write!(f, "case failed: {r}"),
                TestCaseError::Reject(r) => write!(f, "case rejected: {r}"),
            }
        }
    }

    /// Deterministic per-case RNG handed to strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng(StdRng);

    impl TestRng {
        /// RNG for case `case` of the test identified by `name`
        /// (module path + function name). Stable across runs and platforms.
        pub fn deterministic(name: &str, case: u32) -> Self {
            // FNV-1a over the identifying string, mixed with the case index.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng(StdRng::seed_from_u64(
                h ^ ((case as u64) << 1 | 1).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            ))
        }
    }

    impl RngCore for TestRng {
        fn next_u32(&mut self) -> u32 {
            self.0.next_u32()
        }
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            self.0.fill_bytes(dest)
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and its combinators.

    use crate::test_runner::TestRng;
    use rand::Rng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// Generated value type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }

        /// Generates a value, then generates from the strategy `f` builds
        /// out of it.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { source: self, f }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// Always generates a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// [`Strategy::prop_map`] adapter.
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) source: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.generate(rng))
        }
    }

    /// [`Strategy::prop_flat_map`] adapter.
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        pub(crate) source: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;
        fn generate(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.source.generate(rng)).generate(rng)
        }
    }

    /// Uniform choice among boxed alternatives ([`crate::prop_oneof!`]).
    pub struct Union<V> {
        options: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// Builds a union; panics on an empty option list.
        pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let i = rng.gen_range(0..self.options.len());
            self.options[i].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! impl_tuple_strategy {
        ($($s:ident/$v:ident),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($s,)+) = self;
                    ($($s.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A / a);
    impl_tuple_strategy!(A / a, B / b);
    impl_tuple_strategy!(A / a, B / b, C / c);
    impl_tuple_strategy!(A / a, B / b, C / c, D / d);
    impl_tuple_strategy!(A / a, B / b, C / c, D / d, E / e);
    impl_tuple_strategy!(A / a, B / b, C / c, D / d, E / e, F / f);

    /// String-pattern strategies. Upstream interprets the pattern as a full
    /// regex; this shim covers the workspace's actual use — "arbitrary
    /// printable garbage of bounded length" — by honoring only a trailing
    /// `{lo,hi}` length quantifier and generating printable characters
    /// (mixed ASCII and non-ASCII).
    impl Strategy for &'static str {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            let (lo, hi) = parse_len_quantifier(self).unwrap_or((0, 32));
            let len = rng.gen_range(lo..=hi);
            const EXOTIC: &[char] =
                &['é', 'ß', 'λ', '中', '🙂', '¤', '÷', '«', '»', 'Ω', '\u{200b}'];
            (0..len)
                .map(|_| {
                    if rng.gen_bool(0.9) {
                        // Printable ASCII, space through '~'.
                        rng.gen_range(0x20u8..0x7f) as char
                    } else {
                        EXOTIC[rng.gen_range(0..EXOTIC.len())]
                    }
                })
                .collect()
        }
    }

    fn parse_len_quantifier(pattern: &str) -> Option<(usize, usize)> {
        let body = pattern.strip_suffix('}')?;
        let open = body.rfind('{')?;
        let (lo, hi) = body[open + 1..].split_once(',')?;
        Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn quantifier_parsing() {
            assert_eq!(parse_len_quantifier("\\PC{0,80}"), Some((0, 80)));
            assert_eq!(parse_len_quantifier("[a-z]{3,5}"), Some((3, 5)));
            assert_eq!(parse_len_quantifier("abc"), None);
        }

        #[test]
        fn string_strategy_respects_length() {
            let mut rng = TestRng::deterministic("t", 0);
            for _ in 0..50 {
                let s = "\\PC{0,8}".generate(&mut rng);
                assert!(s.chars().count() <= 8);
            }
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::collections::BTreeMap;

    /// Size specification accepted by [`vec()`] and [`btree_map`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi_exclusive: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi_exclusive: r.end }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi_exclusive: *r.end() + 1 }
        }
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.lo..self.hi_exclusive)
        }
    }

    /// Generates `Vec`s of `element` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// Strategy returned by [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generates `BTreeMap`s with a target size drawn from `size` (key
    /// collisions may produce slightly smaller maps, as upstream allows).
    pub fn btree_map<K: Strategy, V: Strategy>(
        keys: K,
        values: V,
        size: impl Into<SizeRange>,
    ) -> BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        BTreeMapStrategy { keys, values, size: size.into() }
    }

    /// Strategy returned by [`btree_map`].
    #[derive(Debug, Clone)]
    pub struct BTreeMapStrategy<K, V> {
        keys: K,
        values: V,
        size: SizeRange,
    }

    impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = self.size.pick(rng);
            let mut map = BTreeMap::new();
            // Bounded attempts so a tiny key domain cannot loop forever.
            for _ in 0..target * 8 + 16 {
                if map.len() >= target {
                    break;
                }
                map.insert(self.keys.generate(rng), self.values.generate(rng));
            }
            map
        }
    }
}

pub mod option {
    //! `Option` strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Generates `Some` from `inner` most of the time, `None` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// Strategy returned by [`of`].
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.gen_bool(0.2) {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

pub mod prelude {
    //! Everything a property-test file needs, mirroring upstream's prelude.

    pub use crate as prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case (not the
/// process) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left == *right, $($fmt)*);
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left != *right, "assertion failed: `{:?}` != `{:?}`", left, right);
    }};
}

/// Rejects the current case (it is regenerated, not counted) when the
/// precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Declares property tests. Each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_each! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_each! { $crate::test_runner::Config::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_each {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let mut accepted: u32 = 0;
            let mut case: u32 = 0;
            let max_cases = config.cases.saturating_mul(20).max(100);
            while accepted < config.cases && case < max_cases {
                let mut __proptest_rng = $crate::test_runner::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                    case,
                );
                $(
                    let $arg = $crate::strategy::Strategy::generate(
                        &($strategy),
                        &mut __proptest_rng,
                    );
                )+
                let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body;
                        ::core::result::Result::Ok(())
                    })();
                match outcome {
                    ::core::result::Result::Ok(()) => accepted += 1,
                    ::core::result::Result::Err(
                        $crate::test_runner::TestCaseError::Reject(_),
                    ) => {}
                    ::core::result::Result::Err(
                        $crate::test_runner::TestCaseError::Fail(msg),
                    ) => {
                        panic!(
                            "proptest {} failed at case {}: {}",
                            stringify!($name),
                            case,
                            msg
                        );
                    }
                }
                case += 1;
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Ranges respect their bounds.
        #[test]
        fn ranges_in_bounds(a in 3u64..17, f in -2.0f64..2.0) {
            prop_assert!((3..17).contains(&a));
            prop_assert!((-2.0..2.0).contains(&f));
        }

        /// Collections honor their size specs.
        #[test]
        fn collections_sized(
            v in prop::collection::vec(0u8..10, 2..6),
            m in prop::collection::btree_map(0usize..100, 0.0f64..1.0, 1..5),
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(!m.is_empty() && m.len() < 5);
        }

        /// prop_assume rejects without failing.
        #[test]
        fn assume_filters(x in 0u32..10) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }

        /// Combinators compose.
        #[test]
        fn combinators(
            v in (1usize..5).prop_flat_map(|n| prop::collection::vec(0i32..100, n..n + 1)),
            choice in prop_oneof![Just(1u8), Just(2u8)],
            opt in prop::option::of(0u16..4),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 5);
            prop_assert!(choice == 1 || choice == 2);
            if let Some(x) = opt {
                prop_assert!(x < 4);
            }
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        let gen = |case| {
            let mut rng = TestRng::deterministic("stability", case);
            prop::collection::vec(0u64..1000, 3..10).generate(&mut rng)
        };
        assert_eq!(gen(0), gen(0));
        assert_ne!(gen(0), gen(1));
    }
}
