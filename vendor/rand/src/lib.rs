//! Hermetic stand-in for the `rand` crate (0.8 API subset).
//!
//! This workspace must build with no network access and no pre-populated
//! cargo registry, so the external `rand` dependency is replaced by this
//! vendored implementation of exactly the surface the workspace uses:
//!
//! - [`RngCore`], [`SeedableRng`], and the [`Rng`] extension trait with
//!   `gen`, `gen_range` (integer and float, half-open and inclusive), and
//!   `gen_bool`;
//! - [`rngs::StdRng`] — a deterministic, seedable generator (xoshiro256++
//!   seeded through SplitMix64). The *streams differ* from upstream
//!   `StdRng` (ChaCha12), which is fine here: every consumer in this
//!   workspace treats the generator as an opaque deterministic stream and
//!   asserts statistical or structural properties, never exact values;
//! - [`seq::SliceRandom`] — Fisher–Yates `shuffle` and `choose`.
//!
//! Determinism contract (the part the paper's protocol depends on): the
//! same seed produces the same stream on every platform, every build, and
//! every call — all arithmetic is wrapping integer math on `u64`.

/// A source of randomness: the object-safe core trait.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// SplitMix64 step: the standard seed-expansion generator.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// RNGs constructible from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it with SplitMix64
    /// (the same convention upstream rand uses).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = splitmix64(&mut sm).to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Types samplable uniformly from an RNG's raw bits (the `Standard`
/// distribution of upstream rand, folded into one trait).
pub trait StandardValue: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardValue for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits → uniform on [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardValue for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardValue for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardValue for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform integer below `span` (> 0), bias-free via rejection sampling.
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    // Largest multiple of `span` representable in 2^64 draws.
    let rem = ((u64::MAX % span) + 1) % span;
    let zone = u64::MAX - rem;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

/// Ranges a value can be drawn from (upstream's `SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_u64_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Full-width range: every bit pattern is valid.
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_u64_below(rng, span as u64) as i128) as $t
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let u: $t = StandardValue::sample(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let u: $t = StandardValue::sample(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}
impl_float_range!(f32, f64);

/// Convenience extension methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` from its standard distribution
    /// (`[0, 1)` for floats, all bit patterns for integers).
    fn gen<T: StandardValue>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p} outside [0, 1]");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic seedable generator: xoshiro256++.
    ///
    /// Not the upstream ChaCha12-based `StdRng`; see the crate docs for why
    /// the stream difference is acceptable in this workspace.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result =
                (self.s[0].wrapping_add(self.s[3])).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                let n = chunk.len();
                chunk.copy_from_slice(&bytes[..n]);
            }
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                *word = u64::from_le_bytes(seed[i * 8..i * 8 + 8].try_into().unwrap());
            }
            if s == [0; 4] {
                // xoshiro must not start from the all-zero state.
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }
}

pub mod seq {
    //! Sequence-related helpers.

    use super::{Rng, RngCore};

    /// Random operations on slices (upstream's `SliceRandom` subset).
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }

    #[test]
    fn gen_range_bounds_respected() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(1.5f64..2.5);
            assert!((1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_small_domain() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..7)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all 7 values should appear: {seen:?}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.3).abs() < 0.01, "frac = {frac}");
    }

    #[test]
    fn shuffle_is_permutation_and_choose_in_slice() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn zero_seed_not_degenerate() {
        let mut rng = StdRng::from_seed([0; 32]);
        let draws: Vec<u64> = (0..16).map(|_| rng.next_u64()).collect();
        assert!(draws.iter().any(|&v| v != 0), "all-zero stream from zero seed");
        assert!(draws.windows(2).any(|w| w[0] != w[1]), "constant stream from zero seed");
    }
}
