#!/usr/bin/env bash
# CI gate for the workspace. Mirrors what a reviewer runs by hand:
#
#   1. release build of every crate
#   2. the full default test suite
#   3. the heavier fault-injection sweeps (feature-gated off by default)
#   4. a warnings-clean check over all targets, fault-injection included
#   5. a fast smoke of the fault sweep bench path
#
# Any step failing fails the script.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> [1/5] release build"
cargo build --release --workspace

echo "==> [2/5] workspace tests"
cargo test -q --workspace

echo "==> [3/5] fault-injection sweeps"
cargo test -q -p cso-distributed --features fault-injection

echo "==> [4/5] warnings-clean (all targets, fault-injection on)"
RUSTFLAGS="-D warnings" cargo check --workspace --all-targets --features fault-injection

echo "==> [5/5] fault sweep smoke"
cargo test -q -p cso-bench faults::

echo "ci: all green"
