#!/usr/bin/env bash
# CI gate for the workspace. Mirrors what a reviewer runs by hand:
#
#   1. formatting (rustfmt.toml is the single source of style)
#   2. release build of every crate
#   3. the full default test suite
#   4. the heavier fault-injection sweeps (feature-gated off by default)
#   5. a warnings-clean check over all targets, fault-injection included
#   6. a warnings-clean rustdoc build (broken intra-doc links fail CI)
#   7. a fast smoke of the fault sweep bench path
#   8. the observability smoke: obs_report must emit a RunReport that
#      parses as strict JSON with every required top-level key
#   9. the scaling smoke: the parallel-executor sweep must run and write
#      a valid BENCH_pr3.json
#  10. the recovery-kernel smoke: the fused-vs-naive kernel sweep must run
#      and write a valid BENCH_pr4.json
#  11. the serving smoke: the loopback server e2e tests must pass and the
#      serve_throughput sweep must run and write a valid BENCH_pr5.json
#  12. the durability smoke: the kill-9 crash harness and the torn-tail
#      WAL fuzz must pass, and the fsync-policy sweep must run and write
#      a valid BENCH_pr6.json
#  13. the telemetry smoke: the live-introspection e2e and the frame
#      extension fuzz must pass, cso-top must render against its own
#      server, and the overhead sweep must write a valid BENCH_pr7.json
#  14. the sharded-engine smoke: the connection reassembly fuzz must
#      pass, the sharded sweep (fast) must run its scaling points plus
#      the overload soak (Busy rejects under a tiny admission cap, the
#      server stays live after the storm), and every reject code and
#      serve.* metric OPERATIONS.md documents must exist in source
#  15. the measurement-operator smoke: the operator proptests (FWHT
#      involution, sparse≡dense sketch bit-identity, descriptor wire
#      round-trips) must pass, the loopback e2e must be bit-identical
#      under every wire-addressable backend, and the fast 3-backend
#      sweep must run without touching the recorded artifacts
#  16. the relay-tier smoke: the two-level loopback e2e (flat-vs-tree
#      bit-identity, whole-region drop degrading to subtree recovery,
#      cross-DC byte accounting, typed manifest rejects) and the
#      relay kill-9 resume must pass, the topology fold proptests must
#      hold, and the tree_topology sweep must run and write a valid
#      BENCH_pr10.json
#
# Any step failing fails the script.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> [1/16] cargo fmt --check"
cargo fmt --all --check

echo "==> [2/16] release build"
cargo build --release --workspace

echo "==> [3/16] workspace tests"
cargo test -q --workspace

echo "==> [4/16] fault-injection sweeps"
cargo test -q -p cso-distributed --features fault-injection

echo "==> [5/16] warnings-clean (all targets, fault-injection on)"
RUSTFLAGS="-D warnings" cargo check --workspace --all-targets --features fault-injection

echo "==> [6/16] rustdoc warnings-clean"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "==> [7/16] fault sweep smoke"
cargo test -q -p cso-bench faults::

echo "==> [8/16] observability smoke (obs_report)"
# The binary self-validates: strict JSON parse of the emitted report,
# required REPORT_KEYS present, comm.* metrics equal to the CostMeter
# totals, per-iteration BOMP events present. Any violation aborts.
cargo run --release -q -p cso-bench --bin obs_report -- 2
for artifact in results/run_report.jsonl BENCH_pr2.json; do
    test -s "$artifact" || { echo "missing $artifact"; exit 1; }
done

echo "==> [9/16] scaling smoke (parallel executor sweep)"
# The sweep self-validates its JSON before writing; the sequential
# reference and every worker count run the same deterministic workload.
cargo run --release -q -p cso-bench --bin figures -- scaling
test -s BENCH_pr3.json || { echo "missing BENCH_pr3.json"; exit 1; }

echo "==> [10/16] recovery-kernel smoke (fused OMP sweep)"
# Fast mode: small dictionaries, same naive-vs-fused measurement as the
# full sweep, but it leaves the recorded full-sweep artifacts alone —
# BENCH_pr4.json is regenerated only by a full `figures -- recovery` run.
cargo run --release -q -p cso-bench --bin figures -- recovery --fast
test -s BENCH_pr4.json || { echo "missing BENCH_pr4.json"; exit 1; }

echo "==> [11/16] serving smoke (loopback server e2e + throughput sweep)"
# The e2e tests assert bit-identity between the loopback server run and
# the in-process wire path, plus fault injection (killed connections,
# corrupt frames, stragglers). The sweep self-validates its JSON.
cargo test -q -p cso-serve --test loopback
cargo run --release -q -p cso-bench --bin figures -- serve_throughput
for artifact in results/serve.csv BENCH_pr5.json; do
    test -s "$artifact" || { echo "missing $artifact"; exit 1; }
done

echo "==> [12/16] durability smoke (kill-9 crash harness + WAL fuzz + fsync sweep)"
# The crash harness SIGKILLs a child-process server at every seeded
# injection point (and at arbitrary times) and requires the resumed run
# to be bit-identical to a never-crashed one; the WAL fuzz truncates and
# bit-flips journal tails at every offset expecting only typed outcomes.
cargo test -q -p cso-serve --test crash
cargo test -q -p cso-serve --test proptest_wal
cargo run --release -q -p cso-bench --bin figures -- serve_durable
for artifact in results/serve_durable.csv BENCH_pr6.json; do
    test -s "$artifact" || { echo "missing $artifact"; exit 1; }
done

echo "==> [13/16] telemetry smoke (introspection e2e + cso-top + overhead sweep)"
# The e2e polls Introspect throughout a live ingest sweep asserting
# monotone counters, bit-identical recovery under observation, and a
# parseable flight-recorder dump; the frame fuzz hardens the trace
# context extension; cso-top renders the live view against its own
# loopback server; the sweep quantifies telemetry overhead.
cargo test -q -p cso-serve --test telemetry
cargo test -q -p cso-serve --test proptest_frame
cargo run --release -q -p cso-bench --bin cso-top -- --self-test
cargo run --release -q -p cso-bench --bin figures -- serve_telemetry
for artifact in results/serve_telemetry.csv BENCH_pr7.json; do
    test -s "$artifact" || { echo "missing $artifact"; exit 1; }
done

echo "==> [14/16] sharded-engine smoke (reassembly fuzz + sweep + docs-link check)"
# The reassembly fuzz drives frames through every split point and
# arbitrary read/write interleavings expecting typed outcomes only; the
# fast sweep runs the scaling points and the overload soak, which
# asserts Busy rejects appear under a tiny admission cap and that a
# control client can still open/seal/recover afterwards.
cargo test -q -p cso-serve --test proptest_conn
cargo test -q -p cso-bench serve_sharded_smoke
# The operator runbook must not drift from the code: every `serve.*`
# and `relay.*` metric name and every reject code it documents has to
# exist verbatim in crate source.
grep -oE '(serve|relay)\.[a-z_]+' OPERATIONS.md | sort -u | while read -r metric; do
    grep -rqF "\"$metric\"" crates/ \
        || { echo "OPERATIONS.md documents unknown metric $metric"; exit 1; }
done
grep -oE '^\| [0-9]+ \| `[A-Za-z]+`' OPERATIONS.md | grep -oE '[A-Za-z]+`' \
    | tr -d '`' | sort -u | while read -r code; do
    grep -qE "^    $code = [0-9]+,$" crates/serve/src/session.rs \
        || { echo "OPERATIONS.md documents unknown reject code $code"; exit 1; }
done

echo "==> [15/16] measurement-operator smoke (proptests + 3-backend sweep)"
# The operator fuzz pins the FWHT involution, sparse/dense sketch
# bit-identity and descriptor wire round-trips per backend; the loopback
# e2e re-runs the protocol bit-identically under every wire-addressable
# operator; the fast sweep times dense vs SRHT vs seeded-sparse without
# touching the recorded full-scale artifacts (BENCH_pr9.json is
# regenerated only by a full `figures -- recovery_ops` run).
cargo test -q -p cso-core --test proptest_ops
cargo test -q -p cso-serve --test loopback loopback_run_is_bit_identical_for_every_operator_backend
cargo run --release -q -p cso-bench --bin figures -- recovery_ops --fast

echo "==> [16/16] relay-tier smoke (two-level e2e + kill-9 resume + topology proptests + sweep)"
# The e2e runs a real two-level tree over loopback sockets: the root's
# recovery must be bit-identical to the flat topology, a whole-region
# drop must degrade to the surviving subtrees exactly, and conflicting
# manifests must draw the typed rejects. The crash test SIGKILLs a leaf
# relay mid-forward and requires the resumed tree to recover the same
# bits without double-counting the region. The proptests generalize the
# fold composition/degradation laws to arbitrary shapes. The sweep
# reruns flat-vs-tree across fan-ins and regenerates BENCH_pr10.json.
cargo test -q -p cso-serve --test relay
cargo test -q -p cso-serve --test crash relay_kill9_mid_forward_resumes_without_double_count
cargo test -q -p cso-distributed --test proptest_topology
cargo run --release -q -p cso-bench --bin figures -- tree_topology
for artifact in results/tree_topology.csv BENCH_pr10.json; do
    test -s "$artifact" || { echo "missing $artifact"; exit 1; }
done

echo "ci: all green"
