#!/usr/bin/env bash
# CI gate for the workspace. Mirrors what a reviewer runs by hand:
#
#   1. formatting (rustfmt.toml is the single source of style)
#   2. release build of every crate
#   3. the full default test suite
#   4. the heavier fault-injection sweeps (feature-gated off by default)
#   5. a warnings-clean check over all targets, fault-injection included
#   6. a warnings-clean rustdoc build (broken intra-doc links fail CI)
#   7. a fast smoke of the fault sweep bench path
#   8. the observability smoke: obs_report must emit a RunReport that
#      parses as strict JSON with every required top-level key
#   9. the scaling smoke: the parallel-executor sweep must run and write
#      a valid BENCH_pr3.json
#
# Any step failing fails the script.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> [1/9] cargo fmt --check"
cargo fmt --all --check

echo "==> [2/9] release build"
cargo build --release --workspace

echo "==> [3/9] workspace tests"
cargo test -q --workspace

echo "==> [4/9] fault-injection sweeps"
cargo test -q -p cso-distributed --features fault-injection

echo "==> [5/9] warnings-clean (all targets, fault-injection on)"
RUSTFLAGS="-D warnings" cargo check --workspace --all-targets --features fault-injection

echo "==> [6/9] rustdoc warnings-clean"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "==> [7/9] fault sweep smoke"
cargo test -q -p cso-bench faults::

echo "==> [8/9] observability smoke (obs_report)"
# The binary self-validates: strict JSON parse of the emitted report,
# required REPORT_KEYS present, comm.* metrics equal to the CostMeter
# totals, per-iteration BOMP events present. Any violation aborts.
cargo run --release -q -p cso-bench --bin obs_report -- 2
for artifact in results/run_report.jsonl BENCH_pr2.json; do
    test -s "$artifact" || { echo "missing $artifact"; exit 1; }
done

echo "==> [9/9] scaling smoke (parallel executor sweep)"
# The sweep self-validates its JSON before writing; the sequential
# reference and every worker count run the same deterministic workload.
cargo run --release -q -p cso-bench --bin figures -- scaling
test -s BENCH_pr3.json || { echo "missing BENCH_pr3.json"; exit 1; }

echo "ci: all green"
