//! The paper's motivating scenario: Bing web-search quality analysis.
//!
//! A week of click scores sits in 8 geo-distributed data centers. The
//! analyst issues the production template query — find the 10 group-by
//! keys whose aggregated click score diverges most from the norm — and the
//! system answers it three ways: the exact ALL baseline, the K+δ sampling
//! baseline, and the CS sketch. The point of the exercise is the last two
//! columns: accuracy and bytes shipped.
//!
//! Run with: `cargo run --release --example web_search_quality`

use cs_outlier::core::outlier_errors;
use cs_outlier::query::{run, ProtocolChoice, QueryOptions};
use cs_outlier::workloads::{ClickLogConfig, ClickLogData};

fn main() {
    // The core-search preset: N ≈ 10.4K keys after filtering, s ≈ 300
    // planted outliers, 8 data centers with per-DC camouflage.
    let config = ClickLogConfig::core_search().scaled_down(4); // 2600 keys for a fast demo
    let data = ClickLogData::generate(&config, 2015).expect("generate workload");
    println!(
        "workload: {} keys × {} data centers, mode = {}, {} true outliers\n",
        data.n(),
        data.l(),
        data.mode,
        data.outlier_indices.len()
    );

    let sql = "SELECT OUTLIER 10 SUM(score) FROM log_streams \
               GROUP BY day, market, vertical, url";
    println!("query: {sql}\n");

    let exact = run(sql, &data, &QueryOptions { protocol: ProtocolChoice::All, seed: 9 })
        .expect("ALL runs");
    let truth: Vec<cs_outlier::core::KeyValue> = data.true_k_outliers(10);

    // Grouping by all four fields keeps keys distinct, so result labels map
    // 1:1 back onto key-dictionary indices.
    let index_of_label: std::collections::HashMap<String, usize> = data
        .keys
        .iter()
        .enumerate()
        .map(|(i, k)| {
            (format!("day={}/market={}/vertical={}/url={}", k.day, k.market, k.vertical, k.url), i)
        })
        .collect();

    println!(
        "{:<14} {:>12} {:>10} {:>8} {:>8} {:>7}",
        "protocol", "bytes", "vs ALL", "EK", "EV", "rounds"
    );
    for choice in [
        ProtocolChoice::All,
        ProtocolChoice::KDelta { delta: 190 },
        ProtocolChoice::Cs { m: Some(520) },
    ] {
        let res =
            run(sql, &data, &QueryOptions { protocol: choice, seed: 9 }).expect("protocol runs");
        let estimate: Vec<cs_outlier::core::KeyValue> = res
            .rows
            .iter()
            .map(|r| cs_outlier::core::KeyValue { index: index_of_label[&r.label], value: r.value })
            .collect();
        let (ek, ev) = outlier_errors(&truth, &estimate).expect("metrics");
        println!(
            "{:<14} {:>12} {:>9.2}% {:>7.1}% {:>7.1}% {:>7}",
            res.protocol,
            res.cost.bytes(),
            100.0 * res.cost.normalized_to(&exact.cost),
            100.0 * ek,
            100.0 * ev,
            res.cost.rounds
        );
    }

    println!("\ntop recovered outliers (CS, M = 520):");
    let res =
        run(sql, &data, &QueryOptions { protocol: ProtocolChoice::Cs { m: Some(520) }, seed: 9 })
            .expect("cs runs");
    println!("  recovered mode: {:.1} (true {})", res.mode, data.mode);
    for row in res.rows.iter().take(5) {
        println!("  {:<36} value {:>9.1}  deviation {:>+9.1}", row.label, row.value, row.deviation);
    }
}
