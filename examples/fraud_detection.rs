//! Fraud detection on heavy-tailed transaction data.
//!
//! The introduction lists fraud detection as a target scenario: per-account
//! transaction sums across many regional processing sites, where fraud shows
//! up as accounts whose *global* totals are extreme even though each site's
//! share stays under local alarm thresholds. Transaction volumes are
//! power-law distributed (the paper's second synthetic workload, α = 0.9),
//! so there is no exact mode — BOMP still recovers the heavy hitters from
//! a small sketch.
//!
//! Run with: `cargo run --release --example fraud_detection`

use cs_outlier::core::{error_on_key, KeyValue};
use cs_outlier::distributed::{Cluster, CsProtocol, KDeltaProtocol, OutlierProtocol};
use cs_outlier::workloads::{split, PowerLawConfig, PowerLawData, SliceStrategy};

fn main() {
    // 8000 accounts, transaction totals ~ Pareto(α = 0.9): a few whales,
    // a heavy tail — harder than majority-dominated data because *nothing*
    // is exactly equal to the mode.
    let n = 8000;
    let data = PowerLawData::generate(&PowerLawConfig { n, alpha: 0.9, x_min: 100.0 }, 2026)
        .expect("generate");
    let k = 10;
    let truth: Vec<KeyValue> = data.true_k_outliers(k);
    println!(
        "accounts: {n}, heaviest global totals: {:?}",
        truth.iter().map(|o| o.value.round()).collect::<Vec<_>>()
    );

    // 6 regional sites; each account's volume splits unevenly across them,
    // and fraud rings smear activity so per-site totals stay unremarkable
    // (zero-sum camouflage) — no site sees the global picture.
    let slices =
        split(&data.values, 6, SliceStrategy::Camouflaged { offset: 150_000.0, fraction: 0.1 }, 5)
            .expect("split");
    let cluster = Cluster::new(slices).expect("cluster");

    println!("\n{:<10} {:>8} {:>12} {:>10}", "protocol", "M", "bytes", "key error");
    for m in [200usize, 400, 800] {
        let run = CsProtocol::new(m, 99).run(&cluster, k).expect("cs run");
        let ek = error_on_key(&truth, &run.estimate).expect("metric");
        println!("{:<10} {:>8} {:>12} {:>9.0}%", run.protocol, m, run.cost.bytes(), 100.0 * ek);
    }
    // The K+δ baseline at a comparable budget.
    let kd = KDeltaProtocol::new(400, 3).run(&cluster, k).expect("k+delta run");
    let ek = error_on_key(&truth, &kd.estimate).expect("metric");
    println!("{:<10} {:>8} {:>12} {:>9.0}%", kd.protocol, "-", kd.cost.bytes(), 100.0 * ek);

    let best = CsProtocol::new(800, 99).run(&cluster, k).expect("cs run");
    println!("\nflagged accounts (CS, M = 800):");
    for o in &best.estimate {
        let exact = data.values[o.index];
        println!("  account {:>5}  recovered {:>12.1}  actual {:>12.1}", o.index, o.value, exact);
    }
}
