//! Continuous monitoring: detect emerging outliers in a stream of windows.
//!
//! "Terabyte of new click log data is generated every 10 mins" — the
//! aggregator keeps one M-length sketch per data center and folds each
//! window's deltas in with O(M) work, re-running recovery per window. The
//! scripted anomalies (key 404 turning hot at window 3, key 1200 regressing
//! at window 6) surface exactly when their cumulative deviation clears the
//! drifting mode.
//!
//! Run with: `cargo run --release --example monitoring`

use cs_outlier::core::BompConfig;
use cs_outlier::distributed::{
    Cluster, CsProtocol, FaultPlan, RetryPolicy, SketchAggregator, SketchEncoding,
};
use cs_outlier::obs::{Recorder, RunReport};
use cs_outlier::workloads::{Anomaly, TimeSeriesConfig, TimeSeriesData};

fn main() {
    let n = 2000;
    let config = TimeSeriesConfig {
        keys: n,
        data_centers: 4,
        batches: 8,
        base_rate: 250.0,
        camouflage: 900.0,
        anomalies: vec![
            Anomaly { from_batch: 3, key: 404, magnitude: 4000.0, data_center: 1 },
            Anomaly { from_batch: 6, key: 1200, magnitude: -6000.0, data_center: 2 },
        ],
    };
    let stream = TimeSeriesData::generate(&config, 2026).expect("generate stream");

    let spec = cs_outlier::core::MeasurementSpec::new(140, n, 777).expect("spec");
    let mut agg = SketchAggregator::new(spec);
    for dc in 0..config.data_centers {
        agg.join(dc, cs_outlier::linalg::Vector::zeros(spec.m)).expect("join");
    }

    println!(
        "monitoring {} keys across {} data centers, sketch M = {}\n",
        n, config.data_centers, spec.m
    );
    let alert_threshold = 1500.0;
    for window in 0..stream.batches() {
        // Each data center ships its O(M) sketch update for this window.
        for dc in 0..config.data_centers {
            agg.update(dc, stream.delta(window, dc)).expect("update");
        }
        let recovered = agg.recover(&BompConfig::default()).expect("recover");
        let alerts: Vec<String> = recovered
            .top_k(5)
            .iter()
            .filter(|o| o.deviation.abs() > alert_threshold)
            .map(|o| format!("key {} ({:+.0})", o.index, o.deviation))
            .collect();
        println!(
            "window {window}: mode {:>7.1} (expected {:>7.1})  alerts: {}",
            recovered.mode,
            stream.expected_mode_after(window + 1),
            if alerts.is_empty() { "none".to_string() } else { alerts.join(", ") }
        );
    }
    println!(
        "\nkey 404 turns hot at window 3; key 1200 regresses from window 6 —\n\
         both surface as soon as their cumulative deviation clears {alert_threshold}."
    );

    // The same monitoring pipeline under transport faults: one data center
    // down, a lossy corrupting network, retransmission with backoff. The
    // aggregator degrades to the surviving subset instead of stalling.
    println!("\n--- degraded window: dc 2 down, 10% loss, 5% corruption ---");
    let cumulative: Vec<Vec<f64>> = (0..config.data_centers)
        .map(|dc| {
            let mut slice = vec![0.0; n];
            for window in 0..stream.batches() {
                for &(key, d) in stream.delta(window, dc) {
                    slice[key] += d;
                }
            }
            slice
        })
        .collect();
    let cluster = Cluster::new(cumulative).expect("cluster");
    let plan = FaultPlan::new(2026).fail_nodes(&[2]).drop_rate(0.10).corrupt_rate(0.05);
    // Trace the degraded execution: the recorder collects the transport
    // span (per-node attempt events), retry/fault counters, and BOMP's
    // per-iteration recovery events, all on the same virtual tick clock
    // the retry policy runs on.
    let rec = Recorder::new();
    let degraded = CsProtocol::new(140, 777)
        .run_degraded_traced(&cluster, 5, SketchEncoding::F64, &plan, &RetryPolicy::default(), &rec)
        .expect("at least one data center must survive");
    println!(
        "surviving data centers: {:?} ({:.0}% of the fleet); dropped: {:?}",
        degraded.surviving_nodes,
        100.0 * degraded.surviving_fraction(),
        degraded.dropped_nodes
    );
    println!(
        "retransmissions: {} ({} corrupt frames rejected by checksum, {} duplicates ignored)",
        degraded.retransmissions, degraded.corrupt_rejected, degraded.duplicates_ignored
    );
    println!(
        "recovery on the partial aggregate: mode {:.1}, top outlier key {} — \
         cost {} bytes incl. retries over {} virtual ticks",
        degraded.run.mode,
        degraded.run.estimate.first().map(|o| o.index).unwrap_or(0),
        degraded.run.cost.bytes(),
        degraded.elapsed_ticks
    );

    let report = RunReport::from_recorder("monitoring", &rec)
        .with_param("n", n as u64)
        .with_param("m", 140u64)
        .with_param("data_centers", config.data_centers as u64)
        .with_param("seed", 777u64);
    let path = report.write_jsonl("results/monitoring_report.jsonl").expect("write report");
    println!("\nfull degraded-run report (trace + fault/retry metrics): {}", path.display());
}
