//! Incremental maintenance: streaming data and data-center churn.
//!
//! The introduction's challenges 2 and 3: terabytes of new click data land
//! every 10 minutes, and data centers join/leave the aggregation. Because
//! the measurement is linear, the aggregator maintains the global sketch
//! with O(M) work per event batch and per membership change — never
//! touching historical data.
//!
//! Run with: `cargo run --release --example incremental_update`

use cs_outlier::core::{BompConfig, MeasurementSpec};
use cs_outlier::distributed::SketchAggregator;

fn print_state(label: &str, agg: &mut SketchAggregator) {
    let r = agg.recover(&BompConfig::default()).expect("recover");
    let top: Vec<(usize, f64)> =
        r.top_k(3).iter().map(|o| (o.index, (o.value * 10.0).round() / 10.0)).collect();
    println!("{label:<34} nodes={} mode={:>7.1} top3={:?}", agg.node_count(), r.mode, top);
}

fn main() {
    let n = 1500;
    let spec = MeasurementSpec::new(120, n, 4242).expect("spec");
    let mut agg = SketchAggregator::new(spec);

    // Three data centers come online with their initial slices.
    // Each holds 600.0 per key; key 77 carries extra mass on DC 0 and 1.
    for dc in 0..3usize {
        let mut slice = vec![600.0; n];
        if dc < 2 {
            slice[77] += 2500.0;
        }
        let sketch = spec.measure_dense(&slice).expect("sketch");
        agg.join(dc, sketch).expect("join");
    }
    print_state("initial (3 DCs):", &mut agg);

    // A burst of new click events on DC 2: key 901 spikes.
    agg.update(2, &[(901, 9000.0), (13, 150.0)]).expect("update");
    print_state("after stream batch on DC 2:", &mut agg);

    // A fourth data center joins mid-flight, reinforcing key 13.
    let mut slice = vec![0.0; n];
    slice[13] = 4000.0;
    agg.join(3, spec.measure_dense(&slice).expect("sketch")).expect("join");
    print_state("after DC 3 joins:", &mut agg);

    // DC 0 is decommissioned: its entire contribution is subtracted by
    // removing one M-length vector.
    agg.leave(0).expect("leave");
    print_state("after DC 0 leaves:", &mut agg);

    println!(
        "\nevery transition cost O(M = {}) arithmetic — history was never replayed",
        agg.spec().m
    );
}
