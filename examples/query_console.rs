//! The query layer end to end: EXPLAIN plans and executions for a batch of
//! production-template queries against one generated click-log workload.
//!
//! Run with: `cargo run --release --example query_console`

use cs_outlier::query::{explain, run, ProtocolChoice, QueryOptions};
use cs_outlier::workloads::{ClickLogConfig, ClickLogData};

fn main() {
    let data = ClickLogData::generate(
        &ClickLogConfig::answer().scaled_down(4), // 2500 keys, 8 DCs
        7,
    )
    .expect("generate workload");
    println!(
        "workload: answer click scores — {} keys × {} data centers, mode {}\n",
        data.n(),
        data.l(),
        data.mode
    );

    let queries = [
        // The paper's production template, verbatim shape.
        "SELECT OUTLIER 10 SUM(score) FROM log_streams PARAMS(0, 6) \
         GROUP BY day, market, vertical, url",
        // Coarser grouping: which market×vertical combinations diverge?
        "SELECT OUTLIER 5 SUM(score) FROM log_streams GROUP BY market, vertical",
        // Filtered drill-down on the first half of the week.
        "SELECT OUTLIER 5 SUM(score) FROM log_streams PARAMS(0, 3) \
         WHERE vertical < 31 GROUP BY day, vertical",
        // Classic top-k for comparison.
        "SELECT TOP 5 SUM(score) FROM log_streams GROUP BY market",
    ];

    let opts = QueryOptions { protocol: ProtocolChoice::Auto, seed: 99 };
    for sql in queries {
        println!("sql> {sql}");
        match explain(sql, &data, &opts) {
            Ok(plan) => println!("  {plan}"),
            Err(e) => {
                println!("  plan error: {e}\n");
                continue;
            }
        }
        match run(sql, &data, &opts) {
            Ok(result) => {
                println!(
                    "  ran {} over {} groups, mode ≈ {:.1}, {} bytes shipped",
                    result.protocol,
                    result.groups,
                    result.mode,
                    result.cost.bytes()
                );
                for row in result.rows.iter().take(5) {
                    println!(
                        "    {:<34} {:>10.1}  ({:+.1} from mode)",
                        row.label, row.value, row.deviation
                    );
                }
            }
            Err(e) => println!("  execution error: {e}"),
        }
        println!();
    }
}
