//! The CS protocol against a real server: sketches over TCP.
//!
//! Everything else in this repo runs the aggregator in-process; here the
//! aggregation is a long-running service. A loopback `cso-serve` server
//! hosts the sessioned epoch lifecycle (open → ingest → seal → recover →
//! report), four "data centers" ship their sketches over concurrent TCP
//! connections, and the recovered outliers are compared bit-for-bit
//! against the in-process wire path — same measurement, same canonical
//! aggregation, same BOMP configuration, so the bits must agree.
//!
//! Run with: `cargo run --release --example sketch_server`

use cs_outlier::distributed::{Cluster, CsProtocol, SketchEncoding};
use cs_outlier::serve::{run_cs_over_server, ServeRunConfig, ServerConfig};
use cs_outlier::workloads::{split, MajorityConfig, MajorityData, SliceStrategy};

fn main() {
    let n = 1000;
    let k = 6;
    let data = MajorityData::generate(&MajorityConfig { n, s: k, ..MajorityConfig::default() }, 99)
        .expect("workload");
    let slices =
        split(&data.values, 4, SliceStrategy::Camouflaged { offset: 1500.0, fraction: 0.25 }, 100)
            .expect("split");
    let cluster = Cluster::new(slices).expect("cluster");
    let proto = CsProtocol::new(150, 7);

    // The service: a real TCP listener on a loopback port.
    let server = cs_outlier::serve::spawn(ServerConfig::default()).expect("server");
    println!("aggregation server listening on {}", server.addr());

    // The protocol, over actual sockets: 4 concurrent ingest connections.
    let cfg = ServeRunConfig { connections: 4, ..ServeRunConfig::default() };
    let run = run_cs_over_server(&proto, &cluster, k, server.addr(), &cfg).expect("run");
    println!(
        "\nepoch recovered: mode={:.1}, {} nodes, {} bytes sent / {} received",
        run.mode, run.nodes, run.bytes_sent, run.bytes_received
    );
    println!("outliers (index, value):");
    for (index, value) in &run.outliers {
        let planted = data.outlier_indices.contains(&(*index as usize));
        println!("  {index:>5}  {value:>10.1}  {}", if planted { "planted ✓" } else { "" });
    }

    // The same run in-process: the server must agree to the bit.
    let reference = proto.run_over_wire(&cluster, k, SketchEncoding::F64).expect("reference");
    let identical = run.mode.to_bits() == reference.mode.to_bits()
        && run.outliers.len() == reference.estimate.len()
        && run.outliers.iter().zip(&reference.estimate).all(|(got, want)| {
            got.0 as usize == want.index && got.1.to_bits() == want.value.to_bits()
        });
    println!("\nbit-identical to the in-process wire path: {identical}");
    assert!(identical, "server and in-process recovery must agree exactly");

    // What the server saw, from its own metrics.
    let metrics = server.recorder().metrics_snapshot();
    println!("\nserver accounting:");
    for key in ["serve.conns_accepted", "serve.sketches_accepted", "serve.epochs_recovered"] {
        println!("  {key} = {}", metrics.counter(key).unwrap_or(0));
    }
    server.shutdown();
}
