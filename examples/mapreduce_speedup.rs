//! The Section 6.2 experiment in miniature: the CS job vs the traditional
//! top-k job on the MapReduce simulator.
//!
//! Two parts:
//! 1. **Executed**: both jobs actually run over the same splits; the CS job
//!    must produce the same top keys while shuffling a fraction of the
//!    bytes (real counters from the engine).
//! 2. **Modeled**: the cluster time model prices both jobs at the paper's
//!    input sizes (600 MB / 600 GB / 12 GB) and prints the end-to-end and
//!    breakdown numbers of Figures 10 and 11.
//!
//! Run with: `cargo run --release --example mapreduce_speedup`

use cs_outlier::core::BompConfig;
use cs_outlier::mapreduce::{
    cs_bomp, run_cs_job, run_topk_job, traditional_topk, ClusterProfile, Record, WorkloadShape,
};
use cs_outlier::workloads::{PowerLawConfig, PowerLawData};

fn main() {
    // ---- Part 1: executed jobs on real records -------------------------
    let n = 4000;
    let k = 5;
    // α = 1.5 power-law data with the mode shifted to 0, as in the paper's
    // Hadoop experiments.
    let data = PowerLawData::generate(&PowerLawConfig { n, alpha: 1.5, x_min: 10.0 }, 77)
        .expect("generate");
    let shifted = data.shifted_to_zero_mode();

    // Spread each key's mass unevenly over 8 splits (shares vary by key).
    let splits: Vec<Vec<Record>> = (0..8)
        .map(|t| {
            shifted
                .iter()
                .enumerate()
                .map(|(i, &v)| (i, v * ((t + i) % 5 + 1) as f64 / 15.0))
                .collect()
        })
        .collect();

    let m = 320;
    let cs = run_cs_job(&splits, n, m, 1234, k, &BompConfig::for_k_outliers(k)).expect("cs job");
    let tk = run_topk_job(&splits, n, k).expect("topk job");

    println!("executed on {} splits × {} keys:", splits.len(), n);
    println!(
        "  traditional top-k: shuffle {:>10} bytes, top keys {:?}",
        tk.counters.shuffle_bytes,
        tk.topk.iter().map(|o| o.index).collect::<Vec<_>>()
    );
    println!(
        "  CS job (M = {m}):   shuffle {:>10} bytes, top keys {:?}",
        cs.counters.shuffle_bytes,
        cs.outliers.iter().map(|o| o.index).collect::<Vec<_>>()
    );
    let reduction =
        100.0 * (1.0 - cs.counters.shuffle_bytes as f64 / tk.counters.shuffle_bytes as f64);
    println!("  shuffle reduction: {reduction:.1}%");

    // ---- Part 2: modeled timings at paper scale ------------------------
    let profile = ClusterProfile::paper_2015();
    const MB: u64 = 1 << 20;
    const GB: u64 = 1 << 30;
    let settings = [
        ("fig10a: 600MB, N=100K", 600 * MB, 100_000usize, 25usize),
        ("fig10b: 600GB, N=100K", 600 * GB, 100_000, 25),
        ("fig10c: 12GB product, N=10K", 12 * GB, 10_000, 600),
    ];
    for (label, input, nn, r) in settings {
        let shape = WorkloadShape { input_bytes: input, record_bytes: 100, n: nn };
        let trad = traditional_topk(&profile, &shape);
        println!("\n{label}");
        println!("  {:<18} {:>10} {:>10} {:>10}", "job", "map s", "reduce s", "total s");
        println!(
            "  {:<18} {:>10.1} {:>10.1} {:>10.1}",
            "traditional",
            trad.mapper_s(),
            trad.reducer_s(),
            trad.end_to_end_s()
        );
        for m in [200usize, 800, 2000] {
            let cs = cs_bomp(&profile, &shape, m, r);
            println!(
                "  {:<18} {:>10.1} {:>10.1} {:>10.1}",
                format!("cs-bomp M={m}"),
                cs.mapper_s(),
                cs.reducer_s(),
                cs.end_to_end_s()
            );
        }
    }
}
