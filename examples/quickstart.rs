//! Quickstart: the full sketch → aggregate → recover pipeline in ~60 lines.
//!
//! Three "data centers" each hold a slice of per-key click scores. No slice
//! shows anything unusual on its own, but once aggregated, a handful of
//! keys are far from the mode. Each node ships only an M-length sketch;
//! the aggregator recovers both the (unknown) mode and the outliers.
//!
//! Run with: `cargo run --release --example quickstart`

use cs_outlier::core::{bomp_traced, outlier_errors, BompConfig, MeasurementSpec};
use cs_outlier::linalg::Vector;
use cs_outlier::obs::{Recorder, RunReport, Value};
use cs_outlier::workloads::{split, MajorityConfig, MajorityData, SliceStrategy};

fn main() {
    // Global data: N = 2000 keys concentrated at b = 1800, s = 12 outliers.
    let n = 2000;
    let data = MajorityData::generate(
        &MajorityConfig { n, s: 12, mode: 1800.0, min_deviation: 500.0, max_deviation: 9000.0 },
        /* seed */ 7,
    )
    .expect("valid config");

    // Distribute it over 3 nodes with camouflage: locally, outlier keys
    // look ordinary and ordinary keys look outlying.
    let slices =
        split(&data.values, 3, SliceStrategy::Camouflaged { offset: 1500.0, fraction: 0.2 }, 11)
            .expect("valid split");

    // Everything below runs under an enabled Recorder: spans group the
    // pipeline stages, and BOMP emits one event per recovery iteration.
    let rec = Recorder::new();

    // Every node derives the same Φ0 from a shared (M, N, seed) spec and
    // transmits only M = 150 numbers instead of N = 2000.
    let spec = MeasurementSpec::new(150, n, 42).expect("valid spec");
    let mut y = Vector::zeros(spec.m);
    {
        let _s = rec.span_with("sketch.build", &[("nodes", Value::U64(3))]);
        for (node, slice) in slices.iter().enumerate() {
            let sketch = spec.measure_dense(slice).expect("sketch");
            println!(
                "node {node}: slice of {n} values compressed to {} measurements",
                sketch.len()
            );
            y.add_assign(&sketch).expect("same length");
        }
    }
    rec.counter_add("comm.bits", 3 * spec.m as u64 * 64);
    rec.counter_add("comm.tuples", 3 * spec.m as u64);
    rec.counter_add("comm.rounds", 1);

    // Aggregator side: recover mode + outliers from the summed sketch.
    let result = bomp_traced(&spec, &y, &BompConfig::default(), &rec).expect("recovery");
    println!(
        "\nrecovered mode b = {:.1}  (true: {:.1}), {} iterations",
        result.mode, data.mode, result.iterations
    );
    println!("top-5 outliers (true outlier keys: {:?}):", data.outlier_indices);
    for o in result.top_k(5) {
        println!("  key {:>4}  value {:>8.1}  deviation {:>+8.1}", o.index, o.value, o.deviation);
    }

    // Communication: 3 nodes × 150 values vs 3 × 2000 for transmit-all.
    let sent = 3 * spec.m;
    let all = 3 * n;
    println!(
        "\ncommunication: {sent} values vs {all} for transmit-all ({:.1}% of ALL)",
        100.0 * sent as f64 / all as f64
    );

    // Bundle trace + metrics + recovery quality into one artifact. The
    // JSONL schema is documented in DESIGN.md §7.
    let truth = data.true_k_outliers(5);
    let estimate: Vec<cs_outlier::core::KeyValue> = result
        .top_k(5)
        .iter()
        .map(|o| cs_outlier::core::KeyValue { index: o.index, value: o.value })
        .collect();
    let (ek, ev) = outlier_errors(&truth, &estimate).expect("quality metrics");
    let report = RunReport::from_recorder("quickstart", &rec)
        .with_param("n", n as u64)
        .with_param("m", spec.m as u64)
        .with_param("nodes", 3u64)
        .with_param("seed", 42u64)
        .with_errors(ek, ev);
    let path = report.write_jsonl("results/quickstart_report.jsonl").expect("write report");
    println!("\nEK = {ek:.4}  EV = {ev:.4}; full run report: {}", path.display());
}
