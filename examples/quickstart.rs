//! Quickstart: the full sketch → aggregate → recover pipeline in ~60 lines.
//!
//! Three "data centers" each hold a slice of per-key click scores. No slice
//! shows anything unusual on its own, but once aggregated, a handful of
//! keys are far from the mode. Each node ships only an M-length sketch;
//! the aggregator recovers both the (unknown) mode and the outliers.
//!
//! Run with: `cargo run --release --example quickstart`

use cs_outlier::core::{bomp, BompConfig, MeasurementSpec};
use cs_outlier::linalg::Vector;
use cs_outlier::workloads::{split, MajorityConfig, MajorityData, SliceStrategy};

fn main() {
    // Global data: N = 2000 keys concentrated at b = 1800, s = 12 outliers.
    let n = 2000;
    let data = MajorityData::generate(
        &MajorityConfig {
            n,
            s: 12,
            mode: 1800.0,
            min_deviation: 500.0,
            max_deviation: 9000.0,
        },
        /* seed */ 7,
    )
    .expect("valid config");

    // Distribute it over 3 nodes with camouflage: locally, outlier keys
    // look ordinary and ordinary keys look outlying.
    let slices = split(
        &data.values,
        3,
        SliceStrategy::Camouflaged { offset: 1500.0, fraction: 0.2 },
        11,
    )
    .expect("valid split");

    // Every node derives the same Φ0 from a shared (M, N, seed) spec and
    // transmits only M = 150 numbers instead of N = 2000.
    let spec = MeasurementSpec::new(150, n, 42).expect("valid spec");
    let mut y = Vector::zeros(spec.m);
    for (node, slice) in slices.iter().enumerate() {
        let sketch = spec.measure_dense(slice).expect("sketch");
        println!(
            "node {node}: slice of {n} values compressed to {} measurements",
            sketch.len()
        );
        y.add_assign(&sketch).expect("same length");
    }

    // Aggregator side: recover mode + outliers from the summed sketch.
    let result = bomp(&spec, &y, &BompConfig::default()).expect("recovery");
    println!(
        "\nrecovered mode b = {:.1}  (true: {:.1}), {} iterations",
        result.mode, data.mode, result.iterations
    );
    println!("top-5 outliers (true outlier keys: {:?}):", data.outlier_indices);
    for o in result.top_k(5) {
        println!(
            "  key {:>4}  value {:>8.1}  deviation {:>+8.1}",
            o.index, o.value, o.deviation
        );
    }

    // Communication: 3 nodes × 150 values vs 3 × 2000 for transmit-all.
    let sent = 3 * spec.m;
    let all = 3 * n;
    println!(
        "\ncommunication: {sent} values vs {all} for transmit-all ({:.1}% of ALL)",
        100.0 * sent as f64 / all as f64
    );
}
